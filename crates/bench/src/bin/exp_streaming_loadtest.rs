//! Streaming-ingest load tests: sustained throughput and per-epoch merge
//! latency of the epoch-based `StreamingDeployment`, against the serial and
//! batch-sharded drivers on the same workloads.
//!
//! Two claims are measured, not assumed (per *CounterPoint*):
//!
//! 1. **Correctness** — a warmed streaming run over a batch produces the
//!    *identical* cost report as the serial driver (asserted), under the
//!    paper's controlled-budget `AbnormalTag` sampling.
//! 2. **Incrementality** — per-epoch merge cost does not grow with the
//!    number of epochs ingested.  Streams of increasing length run at the
//!    same epoch size, and the mean merge latency of each stream's *last*
//!    quarter of epochs is compared: under the old `O(total state)` rebuild
//!    it grows linearly with stream length (the accumulated parameter
//!    blocks and Bloom filters are re-merged every epoch); under the
//!    incremental merge it is flat up to the slow residual growth of the
//!    pattern library itself.  The harness asserts the longest stream's
//!    tail cost stays within 2× of the shortest's.
//!
//! Throughput is then measured from a *paced* [`StreamingSource`] walking
//! the Fig. 14 load plan — traces arrive one at a time through bounded
//! shard queues, never materialized as a batch.
//!
//! ```bash
//! MINT_SCALE=4 cargo run --release --bin exp_streaming_loadtest
//! MINT_SMOKE=1 cargo run --release --bin exp_streaming_loadtest   # CI smoke
//! ```

use bench::ingest_json::{self, JsonObj};
use bench::{fmt_bytes, print_table, ExpConfig};
use mint::core::{
    EpochStats, MintConfig, MintDeployment, SamplingMode, ShardedDeployment, StreamingDeployment,
};
use std::time::{Duration, Instant};
use trace_model::TraceSet;
use workload::{
    layered_application, load_test_plan, GeneratorConfig, StreamingSource, TraceGenerator,
};

fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Merge-latency summary over the stream's epoch boundaries (the
/// end-of-stream reconcile is excluded: it additionally charges the batch
/// accounting).
struct MergeProfile {
    epochs: usize,
    p50_ms: f64,
    p99_ms: f64,
    first_quarter_ms: f64,
    last_quarter_ms: f64,
}

fn merge_profile(epochs: &[EpochStats]) -> Option<MergeProfile> {
    let mut times: Vec<Duration> = epochs
        .iter()
        .filter(|e| !e.end_of_stream)
        .map(|e| e.merge_time)
        .collect();
    if times.len() < 8 {
        return None;
    }
    let quarter = times.len() / 4;
    let mean =
        |slice: &[Duration]| millis(slice.iter().sum::<Duration>()) / slice.len().max(1) as f64;
    let first_quarter_ms = mean(&times[..quarter]);
    let last_quarter_ms = mean(&times[times.len() - quarter..]);
    times.sort();
    Some(MergeProfile {
        epochs: times.len(),
        p50_ms: millis(times[times.len() / 2]),
        p99_ms: millis(times[(times.len() * 99) / 100]),
        first_quarter_ms,
        last_quarter_ms,
    })
}

fn main() {
    let cfg = ExpConfig::from_env();
    let smoke = std::env::var("MINT_SMOKE").is_ok();
    let app = layered_application("prod", 8, 6, 26);
    let base = MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag);

    // ── Part 1: serial equivalence + merge-cost flatness across stream
    //    lengths.  Same epoch size everywhere; if per-epoch merge cost
    //    depended on epochs ingested, longer streams would show costlier
    //    tail epochs. ──
    let epoch_size = 64;
    let shards = 4;
    let multipliers: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let base_requests = cfg.scaled(if smoke { 600 } else { 1_500 });
    let generator_config = GeneratorConfig::default()
        .with_seed(cfg.seed)
        .with_abnormal_rate(0.02);

    let mut rows = Vec::new();
    let mut tail_costs = Vec::new();
    for &multiplier in multipliers {
        let requests = base_requests * multiplier;
        let traces: TraceSet =
            TraceGenerator::new(app.clone(), generator_config.clone()).generate(requests);

        let mut serial = MintDeployment::new(base.clone());
        let serial_start = Instant::now();
        let serial_report = serial.process(&traces);
        let serial_elapsed = serial_start.elapsed();

        let mut streaming = StreamingDeployment::new(
            base.clone()
                .with_shard_count(shards)
                .with_epoch_trace_count(epoch_size),
        );
        let start = Instant::now();
        let report = streaming.process(&traces);
        let elapsed = start.elapsed();
        assert_eq!(
            report, serial_report,
            "{requests}-trace streaming report diverged from serial"
        );
        assert_eq!(
            streaming.merge_full_rebuilds(),
            0,
            "unexpected drift rebuild"
        );

        let profile =
            merge_profile(streaming.epoch_stats()).expect("enough epochs for a merge profile");
        tail_costs.push((requests, profile.last_quarter_ms));
        rows.push(vec![
            format!("{requests}"),
            format!("{}", profile.epochs),
            format!("{:.0}", requests as f64 / elapsed.as_secs_f64().max(1e-9)),
            format!(
                "{:.2}x",
                serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
            ),
            format!("{:.2}", profile.p50_ms),
            format!("{:.2}", profile.p99_ms),
            format!("{:.2}", profile.first_quarter_ms),
            format!("{:.2}", profile.last_quarter_ms),
        ]);
    }
    // The workload's pattern library itself keeps growing slowly with
    // distinct traces (the merge is O(library)), so "flat" allows a modest
    // drift; what must NOT happen is the old O(total state) behaviour,
    // where an 8× longer stream pays ~8× more per tail epoch.
    let (short_requests, short_tail) = tail_costs[0];
    let (long_requests, long_tail) = tail_costs[tail_costs.len() - 1];
    assert!(
        long_tail <= short_tail.max(0.05) * 2.0,
        "per-epoch merge cost grew with stream length: tail {short_tail:.3} ms at \
         {short_requests} traces vs {long_tail:.3} ms at {long_requests} traces"
    );
    print_table(
        &format!(
            "Per-epoch merge cost vs stream length ({shards} shards, epoch {epoch_size}; \
             serial reports asserted identical; tail flatness asserted: \
             {short_tail:.2} ms @ {short_requests} → {long_tail:.2} ms @ {long_requests})"
        ),
        &[
            "stream (traces)",
            "epochs",
            "traces/s",
            "speedup vs serial",
            "merge p50 (ms)",
            "merge p99 (ms)",
            "merge 1st-qtr (ms)",
            "merge last-qtr (ms)",
        ],
        &rows,
    );

    // ── Part 2: sustained throughput from a paced Fig. 14 stream ──
    let plan = load_test_plan();
    let plan = if smoke { &plan[..3] } else { &plan[..] };
    let per_test =
        |spec: &workload::LoadTestSpec| cfg.scaled((spec.total_requests() / 10) as usize);
    let make_source = || {
        StreamingSource::from_load_plan(
            &app,
            GeneratorConfig::default()
                .with_seed(cfg.seed)
                .with_abnormal_rate(0.02),
            plan,
            per_test,
        )
    };
    let planned = make_source().planned();
    // Materialize the identical stream once for the batch-sharded comparator.
    let batch: TraceSet = make_source().collect();

    let stream_spans = batch.span_count();
    let mut rows = Vec::new();
    let mut shards_obj = JsonObj::new(2);
    for shards in if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] } {
        let mut streaming = StreamingDeployment::new(
            base.clone()
                .with_shard_count(shards)
                .with_epoch_trace_count(256),
        );
        streaming.warm_up(&batch);
        let start = Instant::now();
        let streaming_report = streaming.process_stream(make_source());
        let streaming_elapsed = start.elapsed();

        let mut sharded = ShardedDeployment::new(base.clone().with_shard_count(shards));
        let start = Instant::now();
        let sharded_report = sharded.process(&batch);
        let sharded_elapsed = start.elapsed();
        assert_eq!(
            streaming_report, sharded_report,
            "{shards} shards: streaming and batch-sharded reports diverged on the same stream"
        );

        let profile = merge_profile(streaming.epoch_stats());
        let mut row = JsonObj::new(3);
        row.field_f64(
            "streaming_ns_per_span",
            streaming_elapsed.as_nanos() as f64 / stream_spans.max(1) as f64,
        )
        .field_f64(
            "sharded_ns_per_span",
            sharded_elapsed.as_nanos() as f64 / stream_spans.max(1) as f64,
        );
        if let Some(p) = profile.as_ref() {
            row.field_f64("merge_p99_ms", p.p99_ms);
        }
        shards_obj.field_raw(&shards.to_string(), &row.finish());
        rows.push(vec![
            format!("{shards}"),
            format!(
                "{:.0}",
                planned as f64 / streaming_elapsed.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.0}",
                planned as f64 / sharded_elapsed.as_secs_f64().max(1e-9)
            ),
            profile
                .as_ref()
                .map(|p| format!("{:.2}", p.p99_ms))
                .unwrap_or_else(|| "-".into()),
            fmt_bytes(streaming_report.network.total_bytes()),
        ]);
    }
    print_table(
        &format!(
            "Sustained ingest over the paced Fig. 14 stream \
             ({planned} traces, {} load tests; streaming == batch-sharded asserted)",
            plan.len()
        ),
        &[
            "shards",
            "streaming (traces/s)",
            "batch-sharded (traces/s)",
            "epoch merge p99 (ms)",
            "tracing egress",
        ],
        &rows,
    );

    // Persist the paced-stream trajectory as the `streaming_loadtest`
    // section of BENCH_ingest.json.
    let mut section = JsonObj::new(1);
    section
        .field_u64("planned_traces", planned as u64)
        .field_u64("spans", stream_spans as u64)
        .field_u64("load_tests", plan.len() as u64)
        .field_raw("shards", &shards_obj.finish());
    let path = ingest_json::persist_section(&cfg, smoke, "streaming_loadtest", &section.finish());
    println!("wrote {path}");

    println!(
        "\nShape to check: streaming reports match serial byte-for-byte on the warmed \
         batch, last-quarter epoch-merge latency sits at or below the first quarter's \
         (the incremental merge amortizes — growth < 1.0x means later epochs are \
         cheaper), and sustained streaming throughput tracks the batch-sharded driver \
         while never materializing the workload."
    );
}
