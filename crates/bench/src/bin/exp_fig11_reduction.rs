//! Figure 11: tracing network and storage overhead versus request throughput
//! on OnlineBoutique and TrainTicket for six tracing frameworks.
//!
//! For each throughput level the harness drives every framework with the
//! *same* generated trace stream (5% of traffic tagged abnormal, as in the
//! paper's setup) and reports:
//!
//! * the storage written by the tracing backend, extrapolated to MB/min at
//!   the nominal throughput;
//! * the network bandwidth between application nodes and the backend,
//!   likewise extrapolated;
//! * both as a percentage of the raw (OT-Full) trace volume.
//!
//! Absolute numbers come from the simulator's wire-size model; the paper's
//! claims to check are relative: head sampling ≈ its sampling rate on both
//! axes, tail sampling/Sieve pay full network cost, Hindsight is cheap on
//! both but above head sampling on network, and Mint is the cheapest
//! (≈2.7% storage, ≈4.2% network on average).

use bench::{all_frameworks, fmt_pct, print_table, ExpConfig};
use workload::{online_boutique, train_ticket, Application, GeneratorConfig, TraceGenerator};

struct Cell {
    framework: &'static str,
    storage_mb_per_min: f64,
    network_mb_per_min: f64,
    storage_ratio: f64,
    network_ratio: f64,
}

fn run_benchmark(app: Application, cfg: &ExpConfig) -> Vec<(u64, Vec<Cell>)> {
    let throughputs: [u64; 5] = [20_000, 40_000, 60_000, 80_000, 100_000];
    let mut results = Vec::new();
    for (tp_index, &throughput) in throughputs.iter().enumerate() {
        // Simulate a 1-minute window at a reduced request count; ratios are
        // what matters and they are extrapolated back to the nominal rate.
        let requests = cfg.scaled((throughput / 50) as usize);
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + tp_index as u64 * 17)
            .with_abnormal_rate(0.05)
            .with_mean_interarrival_us(60_000_000 / throughput.max(1));
        let mut generator = TraceGenerator::new(app.clone(), generator_config);
        let traces = generator.generate(requests);
        let raw_bytes = traces.total_wire_size() as f64;
        let bytes_per_request = raw_bytes / requests as f64;
        let raw_mb_per_min = bytes_per_request * throughput as f64 / 1e6;

        let mut cells = Vec::new();
        for mut framework in all_frameworks() {
            let report = framework.process(&traces);
            cells.push(Cell {
                framework: framework.name(),
                storage_mb_per_min: raw_mb_per_min * report.storage_ratio(),
                network_mb_per_min: raw_mb_per_min * report.network_ratio(),
                storage_ratio: report.storage_ratio(),
                network_ratio: report.network_ratio(),
            });
        }
        results.push((throughput, cells));
    }
    results
}

fn print_benchmark(name: &str, results: &[(u64, Vec<Cell>)]) {
    let mut storage_rows = Vec::new();
    let mut network_rows = Vec::new();
    for (throughput, cells) in results {
        for cell in cells {
            storage_rows.push(vec![
                throughput.to_string(),
                cell.framework.to_owned(),
                format!("{:.1}", cell.storage_mb_per_min),
                fmt_pct(cell.storage_ratio),
            ]);
            network_rows.push(vec![
                throughput.to_string(),
                cell.framework.to_owned(),
                format!("{:.1}", cell.network_mb_per_min),
                fmt_pct(cell.network_ratio),
            ]);
        }
    }
    print_table(
        &format!("Fig. 11 — {name}: trace data storage overhead"),
        &["req/min", "framework", "storage (MB/min)", "% of raw"],
        &storage_rows,
    );
    print_table(
        &format!("Fig. 11 — {name}: trace data network bandwidth"),
        &["req/min", "framework", "network (MB/min)", "% of raw"],
        &network_rows,
    );
}

type BenchmarkRows = Vec<(u64, Vec<Cell>)>;

fn summarize(results: &[(&str, BenchmarkRows)]) {
    let mut mint_storage = Vec::new();
    let mut mint_network = Vec::new();
    for (_, benchmark) in results {
        for (_, cells) in benchmark {
            if let Some(mint) = cells.iter().find(|c| c.framework == "Mint") {
                mint_storage.push(mint.storage_ratio);
                mint_network.push(mint.network_ratio);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nMint averages across both benchmarks and all throughputs: storage {} (paper: 2.7%), \
         network {} (paper: 4.2%)",
        fmt_pct(mean(&mint_storage)),
        fmt_pct(mean(&mint_network))
    );
}

fn main() {
    let cfg = ExpConfig::from_env();
    let ob = run_benchmark(online_boutique(), &cfg);
    print_benchmark("OnlineBoutique", &ob);
    let tt = run_benchmark(train_ticket(), &cfg);
    print_benchmark("TrainTicket", &tt);
    summarize(&[("OnlineBoutique", ob), ("TrainTicket", tt)]);
}
