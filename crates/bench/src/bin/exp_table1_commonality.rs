//! Table 1: occurrence and proportion of commonality among trace and span
//! pairs in three services.
//!
//! The paper reports 34–56% inter-trace and 25–45% inter-span commonality.
//! Here the three "services" are the two benchmark applications and one
//! Alibaba-style dataset.

use bench::{print_table, ExpConfig};
use mint_core::commonality_statistics;
use workload::{alibaba_dataset, online_boutique, train_ticket, GeneratorConfig, TraceGenerator};

fn main() {
    let cfg = ExpConfig::from_env();
    let mut rows = Vec::new();

    let services: Vec<(&str, workload::Application)> = vec![
        ("Service A (OnlineBoutique)", online_boutique()),
        ("Service B (TrainTicket)", train_ticket()),
        (
            "Service C (Alibaba dataset D)",
            alibaba_dataset("D").unwrap().application(),
        ),
    ];

    for (index, (name, app)) in services.into_iter().enumerate() {
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + index as u64)
            .with_abnormal_rate(0.02);
        let mut generator = TraceGenerator::new(app, generator_config);
        let traces = generator.generate(cfg.scaled(1_500));
        let stats = commonality_statistics(&traces);
        rows.push(vec![
            name.to_owned(),
            stats.inter_trace_common_pairs.to_string(),
            format!("{:.2}%", stats.inter_trace_proportion() * 100.0),
            stats.inter_span_common_pairs.to_string(),
            format!("{:.2}%", stats.inter_span_proportion() * 100.0),
        ]);
    }

    print_table(
        "Table 1 — commonality among trace/span pairs",
        &[
            "service",
            "inter-trace #",
            "inter-trace %",
            "inter-span #",
            "inter-span %",
        ],
        &rows,
    );
    println!("\nPaper ranges: inter-trace 34.44–56.14%, inter-span 25.55–45.34%.");
}
