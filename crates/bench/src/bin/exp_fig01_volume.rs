//! Figure 1: daily trace volume of a production tracing system.
//!
//! The paper reports 18.6–20.5 PB of traces per day between Feb. 21 and
//! Mar. 20, 2024.  This experiment prints the synthetic volume series the
//! workload model produces for the same 28-day window.

use bench::print_table;
use workload::daily_volume_model;

fn main() {
    let days = 28;
    let volumes = daily_volume_model(days);
    let rows: Vec<Vec<String>> = volumes
        .iter()
        .enumerate()
        .map(|(day, tb)| {
            vec![
                format!("day {:02}", day + 1),
                format!("{tb:.0} TB"),
                format!("{:.2} PB", tb / 1024.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 — daily trace volume",
        &["day", "volume (TB)", "volume (PB)"],
        &rows,
    );

    let min = volumes.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = volumes.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nRange: {:.1}–{:.1} PB/day (paper: 18.6–20.5 PB/day)",
        min / 1024.0,
        max / 1024.0
    );
}
