//! Runs every experiment binary in sequence, producing the full set of tables
//! and figures in one go (used to regenerate EXPERIMENTS.md).
//!
//! The binaries are located next to this one in the build directory, so this
//! must be invoked through `cargo run --bin run-all-experiments`.

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "exp-fig01-volume",
    "exp-fig02-overhead",
    "exp-fig03-missrate",
    "exp-table1-commonality",
    "exp-fig11-reduction",
    "exp-fig12-hits",
    "exp-table3-rca",
    "exp-table4-compression",
    "exp-fig14-loadtests",
    "exp-fig15-latency",
    "exp-table5-patterns",
    "exp-fig16-sensitivity",
];

fn main() {
    let current = std::env::current_exe().expect("current executable path");
    let bin_dir = current.parent().expect("binary directory").to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = bin_dir.join(name);
        println!("\n######## {name} ########");
        if !path.exists() {
            println!("(binary not built: {})", path.display());
            failures.push(name);
            continue;
        }
        match Command::new(&path).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                println!("{name} exited with {status}");
                failures.push(name);
            }
            Err(error) => {
                println!("failed to launch {name}: {error}");
                failures.push(name);
            }
        }
    }

    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        println!("\n{} experiments failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
