//! Figure 2: storage overhead and bandwidth increment caused by tracing in
//! the five largest services.
//!
//! The paper measures ~7,639 GB/day of trace storage on average across the
//! top-5 services (≈ $114.59k/month at $0.50/GiB-month) and up to 102 MB/min
//! of additional tracing bandwidth.

use bench::print_table;
use workload::top_service_overhead_model;

fn main() {
    let services = top_service_overhead_model();
    let rows: Vec<Vec<String>> = services
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.0}", s.storage_gb_per_day),
                format!("{:.0}", s.tracing_bandwidth_mb_per_min),
                format!("{:.0}", s.business_bandwidth_mb_per_min),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — per-service tracing overhead",
        &[
            "service",
            "storage (GB/day)",
            "tracing bw (MB/min)",
            "business bw (MB/min)",
        ],
        &rows,
    );

    let mean_storage: f64 =
        services.iter().map(|s| s.storage_gb_per_day).sum::<f64>() / services.len() as f64;
    // $0.50 per GiB per month, 30 days of accumulated daily volume.
    let monthly_cost = mean_storage * services.len() as f64 * 30.0 * 0.50 / 1000.0;
    println!(
        "\nMean storage: {mean_storage:.0} GB/day per service (paper: 7,639 GB/day); \
         estimated monthly storage cost across the top-5 services: ${monthly_cost:.1}k \
         (paper: $114.59k)"
    );
}
