//! Chaos fault-scenario suite: timed fault windows injected live into a
//! streaming source, verified end-to-end through sampling and RCA.
//!
//! The paper's evaluation (Tables 2/3) injects Chaosblade faults into
//! OnlineBoutique and TrainTicket and scores root-cause localization over
//! the retained traces.  This experiment reproduces that *as a streaming
//! scenario*: each run opens a timed fault window (one of the five fault
//! types, one target service) in the middle of a paced trace stream, pushes
//! the stream through the concurrent epoch-based `StreamingDeployment`, and
//! then measures — never assumes — two claims:
//!
//! 1. **Capture** — Mint's biased samplers retain the fault-affected traces
//!    exactly.  The capture rate (fraction of ground-truth affected traces
//!    answerable as `Exact`) is compared against a 5% uniform head-sampling
//!    baseline on the *identical* chaos stream, and the binary asserts
//!    biased ≥ head for every latency-fault scenario.
//! 2. **RCA** — the trace views Mint can reconstruct for *every* trace
//!    (exact where sampled, approximate elsewhere) are enough for MicroRank
//!    and TraceRCA to localize the injected root cause; per-scenario top-1 /
//!    top-3 hits are reported.
//!
//! The full matrix is 5 fault types × 2 topologies × 2 load levels; results
//! are persisted as `BENCH_chaos.json` (override the path with
//! `MINT_CHAOS_OUT`) so the accuracy trajectory is tracked in-repo.
//!
//! ```bash
//! cargo run --release --bin exp_chaos_rca
//! MINT_SMOKE=1 cargo run --release --bin exp_chaos_rca   # CI smoke
//! ```

use bench::{fmt_pct, print_table, ExpConfig};
use mint::core::{MintConfig, SamplingMode, StreamingDeployment};
use rca::{capture_rate, score_streamed_case, MicroRank, RcaMethod, TraceRca};
use std::collections::HashSet;
use trace_model::{TraceId, TraceView};
use workload::{
    default_fault_targets, online_boutique, train_ticket, Application, ChaosScenario, ChaosSource,
    FaultType, FaultWindow, GeneratorConfig, StreamingSource,
};

/// Background load level of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Load {
    /// Sparse traffic: long inter-arrival gaps.
    Quiet,
    /// Dense traffic: 10× the arrival rate and twice the requests.
    Heavy,
}

impl Load {
    fn label(self) -> &'static str {
        match self {
            Load::Quiet => "quiet",
            Load::Heavy => "heavy",
        }
    }

    fn mean_interarrival_us(self) -> u64 {
        match self {
            Load::Quiet => 20_000,
            Load::Heavy => 2_000,
        }
    }

    fn requests(self, base: usize) -> usize {
        match self {
            Load::Quiet => base,
            Load::Heavy => base * 2,
        }
    }
}

/// Everything measured for one cell of the scenario matrix.
struct ScenarioResult {
    name: String,
    app: &'static str,
    fault: FaultType,
    target: String,
    load: Load,
    requests: usize,
    window_start_us: u64,
    window_duration_us: u64,
    eligible: usize,
    affected: usize,
    mint_capture: f64,
    head_capture: f64,
    epochs_observed: usize,
    rca: Vec<(String, bool, bool)>, // (method, top1, top3)
}

/// One full scenario: stream the chaos-laden source through a deployment
/// with `mode` sampling and return the set of affected ids retained exactly,
/// plus (for the Mint run) everything needed downstream.
fn run_deployment(
    app: &Application,
    scenario: &ChaosScenario,
    generator: GeneratorConfig,
    requests: usize,
    mode: SamplingMode,
    seen_ids: &mut Vec<TraceId>,
    epochs_observed: &mut usize,
) -> (StreamingDeployment, Vec<TraceId>, usize, usize) {
    let config = MintConfig::default()
        .with_sampling_mode(mode)
        .with_shard_count(4)
        .with_epoch_trace_count(64);
    let mut deployment = StreamingDeployment::new(config);
    let mut source = ChaosSource::new(
        StreamingSource::paced(app.clone(), generator, requests),
        scenario,
    );
    seen_ids.clear();
    let mut epochs = 0usize;
    {
        let inspecting = (&mut source).inspect(|trace| seen_ids.push(trace.trace_id()));
        deployment.process_stream_observed(inspecting, |_| epochs += 1);
    }
    *epochs_observed = epochs;
    let truth = &source.ground_truth()[0];
    (
        deployment,
        truth.affected_trace_ids.clone(),
        truth.eligible_traces,
        truth.affected_trace_ids.len(),
    )
}

/// The ids of `affected` that `deployment` can answer exactly.
fn captured_exactly(deployment: &StreamingDeployment, affected: &[TraceId]) -> HashSet<TraceId> {
    affected
        .iter()
        .copied()
        .filter(|id| deployment.backend().query(*id).is_exact())
        .collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float for JSON at full round-trip precision; non-finite
/// values (which JSON cannot represent) become `null`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Serializes the results as the `BENCH_chaos.json` document (hand-rolled:
/// the workspace's vendored `serde` is derive-markers only).
fn render_json(cfg: &ExpConfig, smoke: bool, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mint-chaos-v1\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!("      \"app\": \"{}\",\n", json_escape(r.app)));
        out.push_str(&format!("      \"fault_type\": \"{}\",\n", r.fault.label()));
        out.push_str(&format!(
            "      \"target_service\": \"{}\",\n",
            json_escape(&r.target)
        ));
        out.push_str(&format!("      \"load\": \"{}\",\n", r.load.label()));
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!(
            "      \"window_start_us\": {},\n",
            r.window_start_us
        ));
        out.push_str(&format!(
            "      \"window_duration_us\": {},\n",
            r.window_duration_us
        ));
        out.push_str(&format!("      \"eligible_traces\": {},\n", r.eligible));
        out.push_str(&format!("      \"affected_traces\": {},\n", r.affected));
        out.push_str(&format!(
            "      \"mint_capture_rate\": {},\n",
            json_f64(r.mint_capture)
        ));
        out.push_str(&format!(
            "      \"head_capture_rate\": {},\n",
            json_f64(r.head_capture)
        ));
        out.push_str(&format!("      \"epochs\": {},\n", r.epochs_observed));
        out.push_str("      \"rca\": {");
        let cells: Vec<String> = r
            .rca
            .iter()
            .map(|(method, top1, top3)| {
                format!(
                    "\"{}\": {{\"top1\": {top1}, \"top3\": {top3}}}",
                    json_escape(method)
                )
            })
            .collect();
        out.push_str(&cells.join(", "));
        out.push_str("}\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let cfg = ExpConfig::from_env();
    let smoke = std::env::var("MINT_SMOKE").is_ok();
    let base_requests = cfg.scaled(if smoke { 240 } else { 800 });
    let methods: Vec<Box<dyn RcaMethod>> = vec![Box::new(MicroRank), Box::new(TraceRca::default())];

    let apps: [(&'static str, Application); 2] = [
        ("online-boutique", online_boutique()),
        ("train-ticket", train_ticket()),
    ];

    let mut results: Vec<ScenarioResult> = Vec::new();
    for (app_name, app) in &apps {
        let targets = default_fault_targets(app);
        assert!(!targets.is_empty(), "{app_name} has no fault targets");
        for (fault_index, fault) in FaultType::ALL.iter().enumerate() {
            let target = &targets[fault_index % targets.len()];
            for load in [Load::Quiet, Load::Heavy] {
                let requests = load.requests(base_requests);
                let generator = GeneratorConfig::default()
                    .with_seed(cfg.seed ^ (fault_index as u64 + 1))
                    .with_abnormal_rate(0.01)
                    .with_mean_interarrival_us(load.mean_interarrival_us());

                // The window covers the middle of the stream's expected
                // timeline: [45%, 70%) of requests × mean inter-arrival,
                // well past the first-epoch warm-up.
                let expected_span = requests as u64 * load.mean_interarrival_us();
                let window_start = generator.start_time_us + (expected_span * 45) / 100;
                let window_duration = expected_span / 4;
                let name = format!("{app_name}/{}/{}", fault.label(), load.label());
                let scenario = ChaosScenario::new(name.clone(), cfg.seed ^ 0xC4A0).window(
                    FaultWindow::new(*fault, target, window_start, window_duration),
                );

                // Mint run: biased sampling, live epoch observation.
                let mut seen_ids = Vec::new();
                let mut epochs_observed = 0;
                let (mint, affected, eligible, affected_count) = run_deployment(
                    app,
                    &scenario,
                    generator.clone(),
                    requests,
                    SamplingMode::MintBiased,
                    &mut seen_ids,
                    &mut epochs_observed,
                );
                assert_eq!(seen_ids.len(), requests, "{name}: stream was truncated");
                assert!(
                    affected_count > 0,
                    "{name}: fault window affected no traces — widen the window"
                );
                assert!(epochs_observed > 0, "{name}: no epochs observed");
                let mint_capture = capture_rate(&affected, &captured_exactly(&mint, &affected));

                // Head-sampling baseline on the identical chaos stream.
                let mut head_seen = Vec::new();
                let mut head_epochs = 0;
                let (head, head_affected, _, _) = run_deployment(
                    app,
                    &scenario,
                    generator.clone(),
                    requests,
                    SamplingMode::Head,
                    &mut head_seen,
                    &mut head_epochs,
                );
                assert_eq!(
                    affected, head_affected,
                    "{name}: chaos stream not reproducible across runs"
                );
                let head_capture =
                    capture_rate(&head_affected, &captured_exactly(&head, &head_affected));

                if fault.is_latency_fault() {
                    assert!(
                        mint_capture >= head_capture,
                        // mint-lint: allow(L007) — human-facing panic message, not part of the JSON document
                        "{name}: biased capture {mint_capture:.3} fell below the \
                         head-sampling baseline {head_capture:.3}"
                    );
                }

                // RCA over every trace Mint can reconstruct a view for.
                let views: Vec<TraceView> = seen_ids
                    .iter()
                    .filter_map(|id| mint.backend().trace_view(*id))
                    .collect();
                let rca: Vec<(String, bool, bool)> = methods
                    .iter()
                    .map(|method| {
                        let case = score_streamed_case(&views, target, method.as_ref());
                        (method.name().to_owned(), case.hit_at(1), case.hit_at(3))
                    })
                    .collect();

                results.push(ScenarioResult {
                    name,
                    app: app_name,
                    fault: *fault,
                    target: target.clone(),
                    load,
                    requests,
                    window_start_us: window_start,
                    window_duration_us: window_duration,
                    eligible,
                    affected: affected_count,
                    mint_capture,
                    head_capture,
                    epochs_observed,
                    rca,
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![
                r.name.clone(),
                r.target.clone(),
                format!("{}", r.requests),
                format!("{}/{}", r.affected, r.eligible),
                fmt_pct(r.mint_capture),
                fmt_pct(r.head_capture),
            ];
            for (_, top1, top3) in &r.rca {
                row.push(format!(
                    "{}/{}",
                    if *top1 { "hit" } else { "-" },
                    if *top3 { "hit" } else { "-" }
                ));
            }
            row
        })
        .collect();
    print_table(
        "Chaos scenarios: capture rate and RCA localization (Mint biased vs 5% head sampling; \
         biased >= head asserted on latency faults)",
        &[
            "scenario",
            "target",
            "traces",
            "affected/eligible",
            "mint capture",
            "head capture",
            "MicroRank a@1/a@3",
            "TraceRCA a@1/a@3",
        ],
        &rows,
    );

    let latency_scenarios = results
        .iter()
        .filter(|r| r.fault.is_latency_fault())
        .count();
    let mean = |f: &dyn Fn(&ScenarioResult) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len().max(1) as f64
    };
    let mean_mint = mean(&|r: &ScenarioResult| r.mint_capture);
    let mean_head = mean(&|r: &ScenarioResult| r.head_capture);
    let top1 = |method: &str| {
        results
            .iter()
            .flat_map(|r| r.rca.iter())
            .filter(|(m, top1, _)| m == method && *top1)
            .count()
    };
    println!(
        "\n{} scenarios ({} latency-fault scenarios asserted); mean capture: mint {} vs \
         head {}; top-1 hits: MicroRank {}/{}, TraceRCA {}/{}",
        results.len(),
        latency_scenarios,
        fmt_pct(mean_mint),
        fmt_pct(mean_head),
        top1("MicroRank"),
        results.len(),
        top1("TraceRCA"),
        results.len(),
    );

    let out_path =
        std::env::var("MINT_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_owned());
    std::fs::write(&out_path, render_json(&cfg, smoke, &results))
        .unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path}");
}
