//! Figure 16: sensitivity of the total pattern + parameter storage to the
//! Span Parser's similarity threshold.
//!
//! The paper sweeps the threshold over {0.2, 0.4, 0.6, 0.8} on two datasets
//! and two sub-services (no sampling, no Bloom/report overhead): a higher
//! threshold yields more patterns but smaller parameters; total storage
//! decreases as the threshold increases.

use bench::{fmt_bytes, print_table, ExpConfig};
use mint_core::{mint_compressed_size, MintConfig};
use workload::{alibaba_dataset, alibaba_sub_service};

fn main() {
    let cfg = ExpConfig::from_env();
    let thresholds = [0.2, 0.4, 0.6, 0.8];

    let mut sources: Vec<(String, trace_model::TraceSet)> = Vec::new();
    for name in ["A", "B"] {
        let dataset = alibaba_dataset(name).expect("known dataset");
        let mut generator = dataset.generator(cfg.seed);
        sources.push((
            format!("DataSet {name}"),
            generator.generate(dataset.scaled_trace_count(0.002 * cfg.scale)),
        ));
    }
    for name in ["S1", "S2"] {
        let sub = alibaba_sub_service(name).expect("known sub-service");
        let mut generator = sub.generator(cfg.seed);
        sources.push((
            format!("Sub-Service {}", &name[1..]),
            generator.generate(sub.scaled_trace_count(0.01 * cfg.scale)),
        ));
    }

    let mut rows = Vec::new();
    for &threshold in &thresholds {
        let config = MintConfig::default().with_similarity_threshold(threshold);
        let mut row = vec![format!("{threshold:.1}")];
        for (_, traces) in &sources {
            let breakdown = mint_compressed_size(traces, &config, true, true);
            row.push(fmt_bytes(
                breakdown.span_pattern_bytes
                    + breakdown.topo_pattern_bytes
                    + breakdown.params_bytes,
            ));
        }
        rows.push(row);
    }

    let mut headers = vec!["similarity threshold".to_owned()];
    headers.extend(sources.iter().map(|(name, _)| name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig. 16 — total pattern + parameter storage vs similarity threshold",
        &header_refs,
        &rows,
    );
    println!(
        "\nShape to check: storage decreases as the threshold increases; the paper picks 0.8 as \
         the default because pushing further starts to hurt parameter extraction."
    );
}
