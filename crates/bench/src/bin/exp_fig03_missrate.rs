//! Figure 3: trace-query miss rate under the '1 or 0' sampling strategy.
//!
//! The paper observes an average 27.17% miss rate over 30 days in two
//! regions when queries are answered from traces retained by a combination
//! of OpenTelemetry head sampling and tail sampling.  This experiment
//! reproduces the setup: head (5%) + tail (abnormal-tagged) retention, a
//! 30-day query workload biased toward — but not limited to — abnormal
//! traces, and two regions simulated with different seeds.

use baselines::{OtHead, OtTail, TracingFramework};
use bench::{print_table, ExpConfig};
use workload::{
    online_boutique, GeneratorConfig, QueryWorkload, QueryWorkloadConfig, TraceGenerator,
};

fn region_miss_rates(cfg: &ExpConfig, region_seed: u64, days: usize) -> Vec<f64> {
    let generator_config = GeneratorConfig::default()
        .with_seed(region_seed)
        .with_abnormal_rate(0.05);
    let mut generator = TraceGenerator::new(online_boutique(), generator_config);
    let traces = generator.generate(cfg.scaled(4_000));

    // The '1 or 0' strategy in production: head sampling plus tail sampling.
    let mut head = OtHead::new(0.05);
    let mut tail = OtTail::new();
    head.process(&traces);
    tail.process(&traces);

    let queries = QueryWorkload::generate(
        &traces,
        &QueryWorkloadConfig {
            days,
            queries_per_day: 200,
            // Most investigations chase anomalous behaviour, but a sizeable
            // fraction of queries target requests that looked ordinary when
            // they were generated (§2.2.2's real-world example).
            abnormal_bias: 0.7,
            seed: region_seed ^ 0xF00D,
        },
    );

    (0..days)
        .map(|day| {
            let ids = queries.day(day);
            if ids.is_empty() {
                return 0.0;
            }
            let misses = ids
                .iter()
                .filter(|id| !head.query(**id).is_hit() && !tail.query(**id).is_hit())
                .count();
            misses as f64 / ids.len() as f64
        })
        .collect()
}

fn main() {
    let cfg = ExpConfig::from_env();
    let days = 30;
    let region_a = region_miss_rates(&cfg, 1_001, days);
    let region_b = region_miss_rates(&cfg, 2_002, days);

    let rows: Vec<Vec<String>> = (0..days)
        .map(|day| {
            vec![
                format!("day {:02}", day + 1),
                format!("{:.1}%", region_a[day] * 100.0),
                format!("{:.1}%", region_b[day] * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — daily query miss rate under head+tail sampling",
        &["day", "region A miss rate", "region B miss rate"],
        &rows,
    );

    let avg: f64 = region_a.iter().chain(region_b.iter()).sum::<f64>() / (2 * days) as f64;
    println!("\nAverage miss rate: {:.2}% (paper: 27.17%)", avg * 100.0);
}
