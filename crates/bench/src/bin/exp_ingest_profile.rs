//! Per-phase ingest profile: where does a span's ingest time go, and what
//! did the allocation-free matching work buy?
//!
//! The ingest hot path is, per span: **tokenize** each string attribute,
//! **intern** the tokens to dense ids, **scan** the prefix-index candidates,
//! **prefilter** provably sub-threshold candidates away, score the survivors
//! with the **bit-parallel LCS** kernel, **extract** the per-slot parameters
//! from the matching template, and **dispatch** the trace to a shard worker.
//! This binary measures each phase in isolation — and the full match path
//! end-to-end — twice:
//!
//! * **before**: faithful replicas of the pre-optimization implementations
//!   (owned per-token `String`s, a fresh candidate `Vec` per value, fresh DP
//!   rows per comparison, string-token LCS, greedy-only matching, owned
//!   parameter extraction, per-trace channel sends), built from the same
//!   public APIs;
//! * **after**: the current implementations (borrowed tokens, interned ids,
//!   thread-local scratch, bit-parallel LCS with exact prefilters, range
//!   extraction into recycled buffers, batched dispatch).
//!
//! Cost is reported as **ns/span** and **bytes/span** (cumulative heap bytes
//! allocated, counted by a wrapping global allocator) over the Fig. 14 load
//! plan's span stream.  Results are persisted as the `profile` section of
//! `BENCH_ingest.json` (schema `mint-ingest-v1`); in full runs the end-to-end
//! match path is asserted to be at least 30% cheaper per span.
//!
//! ```bash
//! cargo run --release --bin exp_ingest_profile
//! MINT_SMOKE=1 cargo run --release --bin exp_ingest_profile   # CI smoke
//! ```

use bench::ingest_json::{self, JsonObj};
use bench::{print_table, ExpConfig};
use mint_core::span_parser::{PrefixIndex, StringAttributeParser, TemplateToken};
use mint_core::{
    tokenize, tokenize_borrowed, tokenize_into, value_fingerprint, InternedPrefixIndex,
    InternedTemplate, Interner, MintConfig, MintDeployment, PrefilterStats, SamplingMode,
    StreamingDeployment, StringTemplate, TokenMaskTable,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use trace_model::{AttrValue, TraceSet};
use workload::{layered_application, load_test_plan, GeneratorConfig, StreamingSource};

// ── Counting allocator ──────────────────────────────────────────────────
// Wraps the system allocator and counts cumulative allocated bytes and
// allocation calls, so each phase's heap traffic is measurable.  (The
// library crates forbid unsafe code; a global allocator is the one place a
// binary legitimately needs it.)

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Wall-clock and allocation deltas around `f`.
struct Measured {
    ns: f64,
    bytes: u64,
    calls: u64,
}

fn measure<R>(f: impl FnOnce() -> R) -> (R, Measured) {
    let bytes_before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let calls_before = ALLOCATION_CALLS.load(Ordering::Relaxed);
    let start = Instant::now();
    let result = f();
    let ns = start.elapsed().as_nanos() as f64;
    let measured = Measured {
        ns,
        bytes: ALLOCATED_BYTES.load(Ordering::Relaxed) - bytes_before,
        calls: ALLOCATION_CALLS.load(Ordering::Relaxed) - calls_before,
    };
    (result, measured)
}

// ── Legacy replicas ─────────────────────────────────────────────────────
// The pre-optimization implementations, reproduced from the same public
// APIs so the "before" column measures real executable code, not estimates.

/// Pre-optimization tokenizer: a fresh heap `String` per word token and —
/// the punctuation heap-`String` bug — one more per separator character.
fn legacy_tokenize(value: &str) -> Vec<String> {
    fn is_separator(ch: char) -> bool {
        matches!(
            ch,
            ',' | '(' | ')' | '=' | '/' | '?' | '&' | ':' | '.' | '-' | '_'
        )
    }
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in value.chars() {
        if ch.is_whitespace() {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        } else if is_separator(ch) {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            tokens.push(ch.to_string());
        } else {
            current.push(ch);
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Pre-optimization template scoring: score-identical to
/// `StringTemplate::similarity_to` (Var slots match any token), but with two
/// fresh DP row allocations per call instead of the thread-local scratch.
fn legacy_similarity_to(template: &StringTemplate, tokens: &[String]) -> f64 {
    let denom = template.tokens().len().max(tokens.len());
    if denom == 0 {
        return 1.0;
    }
    let mut prev = vec![0usize; tokens.len() + 1];
    let mut curr = vec![0usize; tokens.len() + 1];
    for token_a in template.tokens() {
        for (j, token_b) in tokens.iter().enumerate() {
            let matches = match token_a {
                TemplateToken::Const(s) => s == token_b,
                TemplateToken::Var => true,
            };
            curr[j + 1] = if matches {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[tokens.len()] as f64 / denom as f64
}

/// Pre-optimization matcher: greedy anchors only, no DP fallback — each
/// variable slot ends at the *first* occurrence of the next constant anchor,
/// so values whose parameters contain the anchor spuriously fail (the
/// headline anchor bug this PR fixes).
fn legacy_match(template: &StringTemplate, tokens: &[String]) -> Option<Vec<String>> {
    let ttokens = template.tokens();
    let mut params = Vec::with_capacity(template.var_count());
    let mut pos = 0usize;
    let mut i = 0usize;
    while i < ttokens.len() {
        match &ttokens[i] {
            TemplateToken::Const(expected) => {
                if pos < tokens.len() && &tokens[pos] == expected {
                    pos += 1;
                    i += 1;
                } else {
                    return None;
                }
            }
            TemplateToken::Var => {
                let anchor = ttokens[i + 1..].iter().find_map(|t| match t {
                    TemplateToken::Const(s) => Some(s.as_str()),
                    TemplateToken::Var => None,
                });
                let start = pos;
                match anchor {
                    Some(anchor) => {
                        while pos < tokens.len() && tokens[pos] != anchor {
                            pos += 1;
                        }
                        if pos >= tokens.len() {
                            return None;
                        }
                    }
                    None => pos = tokens.len(),
                }
                params.push(tokens[start..pos].join(" "));
                i += 1;
            }
        }
    }
    if pos == tokens.len() {
        Some(params)
    } else {
        None
    }
}

/// Pre-optimization full match path: owned tokenization, a fresh candidate
/// `Vec` per value, greedy-only structural matching, cloning similarity
/// fallback.  State-compatible with [`StringAttributeParser`] (same template
/// library shape), built from the same public types.
struct LegacyParser {
    templates: Vec<StringTemplate>,
    index: PrefixIndex,
    threshold: f64,
}

impl LegacyParser {
    fn new(threshold: f64) -> Self {
        LegacyParser {
            templates: Vec::new(),
            index: PrefixIndex::new(),
            threshold,
        }
    }

    fn parse(&mut self, value: &str) -> (usize, Vec<String>) {
        let tokens = legacy_tokenize(value);
        let candidates = self.index.candidates(&tokens);
        if let Some(hit) = candidates
            .iter()
            .find_map(|&id| legacy_match(&self.templates[id], &tokens).map(|params| (id, params)))
        {
            return hit;
        }
        let mut best: Option<(usize, f64)> = None;
        for &id in &candidates {
            let score = legacy_similarity_to(&self.templates[id], &tokens);
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((id, score));
            }
        }
        if best.map(|(_, s)| s < self.threshold).unwrap_or(true) {
            for (id, template) in self.templates.iter().enumerate() {
                let score = legacy_similarity_to(template, &tokens);
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((id, score));
                }
            }
        }
        match best {
            Some((id, score)) if score >= self.threshold => {
                if let Some(params) = legacy_match(&self.templates[id], &tokens) {
                    return (id, params);
                }
                let first_before = self.templates[id].first_const().map(str::to_owned);
                self.templates[id].generalize(&tokens);
                if self.templates[id].first_const().map(str::to_owned) != first_before {
                    self.index.rebuild(&self.templates);
                }
                let params = legacy_match(&self.templates[id], &tokens)
                    .unwrap_or_else(|| vec![value.to_owned()]);
                (id, params)
            }
            _ => {
                let template = StringTemplate::from_raw_tokens(&tokens);
                let params = legacy_match(&template, &tokens).unwrap_or_default();
                let id = self.templates.len();
                self.index.insert(id, &template);
                self.templates.push(template);
                (id, params)
            }
        }
    }
}

// ── Reporting ───────────────────────────────────────────────────────────

struct Phase {
    name: &'static str,
    before: Measured,
    after: Measured,
}

impl Phase {
    fn reduction_pct(&self) -> f64 {
        if self.before.ns <= 0.0 {
            return 0.0;
        }
        (1.0 - self.after.ns / self.before.ns) * 100.0
    }
}

fn per_span(value: f64, spans: usize, reps: usize) -> f64 {
    value / (spans.max(1) * reps.max(1)) as f64
}

fn main() {
    let cfg = ExpConfig::from_env();
    let smoke = std::env::var("MINT_SMOKE").is_ok();
    let reps = if smoke { 1 } else { 3 };

    // The same span stream the Fig. 14 loadtests replay: the full load plan
    // walked once, materialized so every phase sees identical input.
    let app = layered_application("prod", 8, 6, 26);
    let plan = load_test_plan();
    let plan = if smoke { &plan[..3] } else { &plan[..] };
    let per_test =
        |spec: &workload::LoadTestSpec| cfg.scaled((spec.total_requests() / 10) as usize);
    let generator_config = GeneratorConfig::default()
        .with_seed(cfg.seed)
        .with_abnormal_rate(0.02);
    let batch: TraceSet =
        StreamingSource::from_load_plan(&app, generator_config, plan, per_test).collect();
    let spans = batch.span_count();

    // Every string attribute value in the stream — the tokenizer/matcher
    // phases each process exactly this corpus.
    let values: Vec<&str> = batch
        .traces()
        .iter()
        .flat_map(|t| t.spans())
        .flat_map(|s| s.attributes().iter())
        .filter_map(|(_, v)| match v {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    println!(
        "profiling {spans} spans / {} string values over the Fig. 14 plan \
         (scale {}, seed {}, reps {reps}{})",
        values.len(),
        cfg.scale,
        cfg.seed,
        if smoke { ", smoke" } else { "" }
    );

    // The legacy tokenizer must stay semantically identical — only its
    // allocation behavior differs.
    for value in values.iter().take(2_000) {
        assert_eq!(
            legacy_tokenize(value),
            tokenize(value),
            "legacy tokenizer replica diverged on {value:?}"
        );
    }

    // Token lists precomputed once, outside every timed region, so phases
    // that consume tokens measure only their own work.
    let owned_tokens: Vec<Vec<String>> = values.iter().map(|v| legacy_tokenize(v)).collect();
    let borrowed_tokens: Vec<Vec<&str>> = values.iter().map(|v| tokenize_borrowed(v)).collect();

    // A template library warmed on the corpus gives the scan/LCS/extract
    // phases realistic candidates.
    let mut warm = StringAttributeParser::new(0.8);
    for value in &values {
        warm.parse(value);
    }
    let templates: Vec<StringTemplate> = warm.templates().to_vec();
    let mut index = PrefixIndex::new();
    index.rebuild(&templates);
    println!(
        "warm template library: {} templates across {} prefix buckets",
        templates.len(),
        index.len()
    );

    // Interned mirror of the warm library: one parser-local vocabulary, the
    // template ids lowered onto it, and every value pre-lowered to id form.
    // This is exactly the state a warmed `StringAttributeParser` carries.
    let mut interner = Interner::new();
    let interned: Vec<InternedTemplate> = templates
        .iter()
        .map(|t| InternedTemplate::from_template(t, &mut interner))
        .collect();
    let mut interned_index = InternedPrefixIndex::new();
    interned_index.rebuild(&interned);
    let value_ids: Vec<Vec<u32>> = borrowed_tokens
        .iter()
        .map(|tokens| {
            let mut ids = Vec::new();
            interner.lookup_into(tokens, &mut ids);
            ids
        })
        .collect();

    // The interned scorer must be score-identical to the string scorer.
    {
        let mut table = TokenMaskTable::new();
        for (i, tokens) in borrowed_tokens.iter().take(2_000).enumerate() {
            let template_idx = i % templates.len();
            table.build(&value_ids[i], interner.vocab_size());
            let interned_score = interned[template_idx].similarity_with(&mut table);
            let string_score = templates[template_idx].similarity_to(tokens);
            assert!(
                (interned_score - string_score).abs() < 1e-12,
                "interned similarity diverged on {:?}: {} vs {}",
                values[i],
                interned_score,
                string_score
            );
        }
    }

    let mut phases: Vec<Phase> = Vec::new();

    // ── Phase: tokenize ──
    let (_, before) = measure(|| {
        for _ in 0..reps {
            for value in &values {
                black_box(legacy_tokenize(value).len());
            }
        }
    });
    let (_, after) = measure(|| {
        let mut buffer: Vec<&str> = Vec::new();
        for _ in 0..reps {
            for value in &values {
                tokenize_into(value, &mut buffer);
                black_box(buffer.len());
            }
        }
    });
    phases.push(Phase {
        name: "tokenize",
        before,
        after,
    });

    // ── Phase: candidate scan ──
    let (_, before) = measure(|| {
        for _ in 0..reps {
            for tokens in &owned_tokens {
                black_box(index.candidates(tokens).len());
            }
        }
    });
    let (_, after) = measure(|| {
        let mut buffer: Vec<usize> = Vec::new();
        for _ in 0..reps {
            for tokens in &borrowed_tokens {
                index.candidates_into(tokens, &mut buffer);
                black_box(buffer.len());
            }
        }
    });
    phases.push(Phase {
        name: "candidate_scan",
        before,
        after,
    });

    // ── Phase: LCS similarity ──
    // Each value scored against a rotating template, like the best-match
    // fallback does per candidate.  Tokens (before) and ids (after) are
    // precomputed outside the timed region, exactly as the parser computes
    // them once per value; the after side pays the per-value mask-table
    // build plus the bit-parallel kernel.
    let (_, before) = measure(|| {
        let mut acc = 0.0f64;
        for _ in 0..reps {
            for (i, tokens) in owned_tokens.iter().enumerate() {
                let template = &templates[i % templates.len()];
                acc += legacy_similarity_to(template, tokens);
            }
        }
        black_box(acc)
    });
    let (_, after) = measure(|| {
        let mut acc = 0.0f64;
        let mut table = TokenMaskTable::new();
        for _ in 0..reps {
            for (i, ids) in value_ids.iter().enumerate() {
                table.build(ids, interner.vocab_size());
                acc += interned[i % interned.len()].similarity_with(&mut table);
            }
        }
        black_box(acc)
    });
    phases.push(Phase {
        name: "lcs_similarity",
        before,
        after,
    });

    // ── Phase: interned LCS, end to end ──
    // The interning change against the *current* string DP (the previous
    // after side: thread-local scratch rows, `&str` equality per cell).  The
    // after side is the whole per-value interned path as the parser runs it:
    // token-id lookup, mask-table build, then the kernel — so the one
    // per-value cost the id representation adds (hashing each token once) is
    // charged here rather than hidden.
    let (_, before) = measure(|| {
        let mut acc = 0.0f64;
        for _ in 0..reps {
            for (i, tokens) in borrowed_tokens.iter().enumerate() {
                let template = &templates[i % templates.len()];
                acc += template.similarity_to(tokens);
            }
        }
        black_box(acc)
    });
    let (_, after) = measure(|| {
        let mut acc = 0.0f64;
        let mut ids: Vec<u32> = Vec::new();
        let mut table = TokenMaskTable::new();
        for _ in 0..reps {
            for (i, tokens) in borrowed_tokens.iter().enumerate() {
                interner.lookup_into(tokens, &mut ids);
                table.build(&ids, interner.vocab_size());
                acc += interned[i % interned.len()].similarity_with(&mut table);
            }
        }
        black_box(acc)
    });
    phases.push(Phase {
        name: "lcs_interned",
        before,
        after,
    });

    // ── Phase: prefilter ──
    // The similarity fallback over the real candidate sets: before scores
    // every candidate with the bit-parallel kernel; after applies the two
    // exact prefilter bounds (length + fingerprint) first.  Both sides
    // accumulate the winning (id, score) whenever it clears the threshold,
    // and those checksums must agree exactly — the prefilter may only skip
    // provable losers, never change a winner.
    let threshold = 0.8;
    let mut prefilter_stats = PrefilterStats::default();
    let scan = |prefilter: bool, stats: &mut PrefilterStats| {
        let mut winner_checksum = 0.0f64;
        let mut winners = 0u64;
        let mut candidates: Vec<usize> = Vec::new();
        let mut table = TokenMaskTable::new();
        for _ in 0..reps {
            for ids in &value_ids {
                interned_index.candidates_into(ids.first().copied(), &mut candidates);
                table.build(ids, interner.vocab_size());
                let (fp, unknown) = value_fingerprint(ids);
                let mut best: Option<(usize, f64)> = None;
                for &id in &candidates {
                    stats.candidates_considered += 1;
                    if prefilter
                        && !interned[id].prefilter_admits(ids.len(), fp, unknown, threshold)
                    {
                        stats.candidates_skipped += 1;
                        continue;
                    }
                    stats.lcs_calls += 1;
                    let score = interned[id].similarity_with(&mut table);
                    if best.map(|(_, s)| score > s).unwrap_or(true) {
                        best = Some((id, score));
                    }
                }
                if let Some((id, score)) = best {
                    if score >= threshold {
                        winners += 1;
                        winner_checksum += score + id as f64;
                    }
                }
            }
        }
        (winners, winner_checksum)
    };
    let mut unfiltered_stats = PrefilterStats::default();
    let (before_winners, before) = measure(|| scan(false, &mut unfiltered_stats));
    let (after_winners, after) = measure(|| scan(true, &mut prefilter_stats));
    assert_eq!(
        before_winners, after_winners,
        "prefilter changed an above-threshold winner"
    );
    phases.push(Phase {
        name: "prefilter",
        before,
        after,
    });
    println!(
        "prefilter over the warm candidate sets: {} of {} candidates skipped \
         ({:.1}%), {} LCS calls avoided, winners unchanged",
        prefilter_stats.candidates_skipped,
        prefilter_stats.candidates_considered,
        100.0 * prefilter_stats.candidates_skipped as f64
            / prefilter_stats.candidates_considered.max(1) as f64,
        prefilter_stats.lcs_calls_avoided(),
    );

    // ── Phase: extract ──
    // (value, template) pairs where the current matcher succeeds; pairs the
    // greedy-only matcher misses are the anchor-bug recoveries and are
    // excluded from the like-for-like timing.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut recovered = 0usize;
    for (value_idx, tokens) in borrowed_tokens.iter().enumerate() {
        let candidates = index.candidates(tokens);
        if let Some(template_idx) = candidates
            .into_iter()
            .find(|&id| templates[id].match_and_extract(tokens).is_some())
        {
            if legacy_match(&templates[template_idx], &owned_tokens[value_idx]).is_some() {
                pairs.push((value_idx, template_idx));
            } else {
                recovered += 1;
            }
        }
    }
    let (_, before) = measure(|| {
        let mut hits = 0usize;
        for _ in 0..reps {
            for &(value_idx, template_idx) in &pairs {
                hits += legacy_match(&templates[template_idx], &owned_tokens[value_idx]).is_some()
                    as usize;
            }
        }
        black_box(hits)
    });
    let (_, after) = measure(|| {
        let mut hits = 0usize;
        let mut params: Vec<String> = Vec::new();
        for _ in 0..reps {
            for &(value_idx, template_idx) in &pairs {
                hits += templates[template_idx]
                    .match_and_extract_into(&borrowed_tokens[value_idx], &mut params)
                    as usize;
            }
        }
        black_box(hits)
    });
    phases.push(Phase {
        name: "extract",
        before,
        after,
    });
    println!(
        "extract pairs: {} matched by both tiers, {} recovered from the greedy \
         anchor bug by the DP fallback",
        pairs.len(),
        recovered
    );

    // ── Phase: full match path ──
    // Fresh parsers learn the corpus from scratch each rep, end to end.
    let (legacy_templates, before) = measure(|| {
        let mut count = 0usize;
        for _ in 0..reps {
            let mut parser = LegacyParser::new(0.8);
            for value in &values {
                black_box(parser.parse(value).0);
            }
            count = parser.templates.len();
        }
        count
    });
    let mut match_path_stats = PrefilterStats::default();
    let (current_templates, after) = measure(|| {
        let mut count = 0usize;
        let mut token_buffer: Vec<&str> = Vec::new();
        for _ in 0..reps {
            let mut parser = StringAttributeParser::new(0.8);
            for value in &values {
                black_box(parser.parse_with_buffer(value, &mut token_buffer).0);
            }
            count = parser.template_count();
            match_path_stats = parser.prefilter_stats();
        }
        count
    });
    phases.push(Phase {
        name: "match_path",
        before,
        after,
    });
    println!(
        "match path template libraries: legacy {legacy_templates}, current {current_templates}"
    );
    println!(
        "match path prefilter: {} of {} fallback candidates skipped ({:.1}%), \
         {} LCS calls made",
        match_path_stats.candidates_skipped,
        match_path_stats.candidates_considered,
        100.0 * match_path_stats.candidates_skipped as f64
            / match_path_stats.candidates_considered.max(1) as f64,
        match_path_stats.lcs_calls,
    );

    // ── Phase: dispatch ──
    // Streaming ingest of the same stream, per-trace sends (batch 1, the old
    // behavior) vs batched sends (the default); reports must be identical.
    // Multi-threaded wall clock is noisy — especially on small containers
    // where router and shard workers share a core — so the two sides run
    // interleaved and each keeps its best of `reps` runs; the result is
    // scaled back up because the shared per-span math divides by `reps`.
    let base = MintConfig::default()
        .with_sampling_mode(SamplingMode::AbnormalTag)
        .with_shard_count(4)
        .with_epoch_trace_count(256);
    let dispatch_run = |config: MintConfig| {
        let mut deployment = StreamingDeployment::new(config);
        measure(|| deployment.process(&batch))
    };
    let keep_min = |slot: &mut Option<Measured>, m: Measured| {
        if slot.as_ref().map(|b| m.ns < b.ns).unwrap_or(true) {
            *slot = Some(m);
        }
    };
    let (mut best_before, mut best_after) = (None, None);
    let (mut report_unbatched, mut report_batched) = (None, None);
    for _ in 0..reps {
        let (r, m) = dispatch_run(base.clone().with_dispatch_batch_size(1));
        keep_min(&mut best_before, m);
        report_unbatched = Some(r);
        let (r, m) = dispatch_run(base.clone());
        keep_min(&mut best_after, m);
        report_batched = Some(r);
    }
    assert_eq!(
        report_unbatched, report_batched,
        "dispatch batching changed the cost report"
    );
    let rescale = |best: Option<Measured>| {
        let best = best.expect("at least one dispatch run");
        Measured {
            ns: best.ns * reps as f64,
            bytes: best.bytes * reps as u64,
            calls: best.calls * reps as u64,
        }
    };
    phases.push(Phase {
        name: "dispatch",
        before: rescale(best_before),
        after: rescale(best_after),
    });

    // ── End-to-end pipeline (current implementation only) ──
    let mut serial =
        MintDeployment::new(MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag));
    let (serial_report, serial_cost) = measure(|| serial.process(&batch));
    assert_eq!(serial_report.traces, batch.len() as u64);

    // ── Table ──
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.name.to_owned(),
                format!("{:.0}", per_span(p.before.ns, spans, reps)),
                format!("{:.0}", per_span(p.after.ns, spans, reps)),
                format!("{:.1}%", p.reduction_pct()),
                format!("{:.0}", per_span(p.before.bytes as f64, spans, reps)),
                format!("{:.0}", per_span(p.after.bytes as f64, spans, reps)),
                format!("{:.1}", per_span(p.before.calls as f64, spans, reps)),
                format!("{:.1}", per_span(p.after.calls as f64, spans, reps)),
            ]
        })
        .collect();
    print_table(
        "Ingest hot-path phases, legacy replicas vs current (per span of the Fig. 14 stream)",
        &[
            "phase",
            "before (ns)",
            "after (ns)",
            "time cut",
            "before (B)",
            "after (B)",
            "before allocs",
            "after allocs",
        ],
        &rows,
    );
    println!(
        "\nend-to-end serial pipeline: {:.0} ns/span, {:.0} heap bytes/span \
         ({:.1} allocations/span)",
        per_span(serial_cost.ns, spans, 1),
        per_span(serial_cost.bytes as f64, spans, 1),
        per_span(serial_cost.calls as f64, spans, 1),
    );

    // ── Persist the `profile` section of BENCH_ingest.json ──
    let mut phases_obj = JsonObj::new(2);
    for p in &phases {
        let mut obj = JsonObj::new(3);
        obj.field_f64("before_ns_per_span", per_span(p.before.ns, spans, reps))
            .field_f64("after_ns_per_span", per_span(p.after.ns, spans, reps))
            .field_f64("reduction_pct", p.reduction_pct())
            .field_f64(
                "before_bytes_per_span",
                per_span(p.before.bytes as f64, spans, reps),
            )
            .field_f64(
                "after_bytes_per_span",
                per_span(p.after.bytes as f64, spans, reps),
            )
            .field_f64(
                "before_allocs_per_span",
                per_span(p.before.calls as f64, spans, reps),
            )
            .field_f64(
                "after_allocs_per_span",
                per_span(p.after.calls as f64, spans, reps),
            );
        phases_obj.field_raw(p.name, &obj.finish());
    }
    let mut pipeline = JsonObj::new(2);
    pipeline
        .field_f64("serial_ns_per_span", per_span(serial_cost.ns, spans, 1))
        .field_f64(
            "serial_bytes_per_span",
            per_span(serial_cost.bytes as f64, spans, 1),
        )
        .field_f64(
            "serial_allocs_per_span",
            per_span(serial_cost.calls as f64, spans, 1),
        );
    // Prefilter effectiveness on the real match path (the end-to-end parser
    // run, not the warm-library microphase): how many similarity-fallback
    // candidates the exact bounds discharged without an LCS call.
    let mut prefilter_effect = JsonObj::new(2);
    prefilter_effect
        .field_u64(
            "candidates_considered",
            match_path_stats.candidates_considered,
        )
        .field_u64("candidates_skipped", match_path_stats.candidates_skipped)
        .field_u64("lcs_calls", match_path_stats.lcs_calls)
        .field_u64("lcs_calls_avoided", match_path_stats.lcs_calls_avoided())
        .field_f64(
            "skip_pct",
            100.0 * match_path_stats.candidates_skipped as f64
                / match_path_stats.candidates_considered.max(1) as f64,
        );
    let mut profile = JsonObj::new(1);
    profile
        .field_u64("spans", spans as u64)
        .field_u64("string_values", values.len() as u64)
        .field_u64("reps", reps as u64)
        .field_u64("templates", templates.len() as u64)
        .field_u64("interned_vocabulary", interner.vocab_size() as u64)
        .field_u64("anchor_bug_recovered_matches", recovered as u64)
        .field_raw("phases", &phases_obj.finish())
        .field_raw("prefilter_effect", &prefilter_effect.finish())
        .field_raw("pipeline", &pipeline.finish());
    let path = ingest_json::persist_section(&cfg, smoke, "profile", &profile.finish());
    println!("wrote {path}");

    // The whole point of the exercise, asserted (timing noise makes this too
    // brittle for smoke runs, where reps = 1 and the corpus is tiny).
    let match_path = phases
        .iter()
        .find(|p| p.name == "match_path")
        .expect("match_path phase present");
    if !smoke {
        assert!(
            match_path.reduction_pct() >= 30.0,
            "match path must be at least 30% cheaper per span, measured {:.1}%",
            match_path.reduction_pct()
        );
    }
    println!(
        "\nShape to check: tokenize, candidate scan, LCS and extract drop to \
         (near) zero heap bytes per span; the interned kernel and prefilter \
         cut the similarity phases hard; the full match path is ≥30% cheaper \
         in time (asserted in full runs); prefiltering never changes an \
         above-threshold winner (asserted); and dispatch batching changes \
         cost, not results (asserted)."
    );
}
