//! Table 4 (and Fig. 13): lossless, queryable compression ratio comparison.
//!
//! Six Alibaba-style datasets (Fig. 13 parameters) are rendered to the same
//! line-oriented text every comparator consumes; each approach reports the
//! ratio between that raw text and its queryable compressed representation.
//! Compared approaches: LogZip, LogReducer, CLP, Mint without inter-span
//! parsing (w/o Sp), Mint without inter-trace parsing (w/o Tp), and full
//! Mint.

use bench::{print_table, ExpConfig};
use compressors::{Clp, Compressor, LogReducer, LogZip};
use mint_core::{mint_compressed_size, MintConfig};
use trace_model::render_trace_text;
use workload::ALIBABA_DATASETS;

fn main() {
    let cfg = ExpConfig::from_env();
    // Fraction of each paper dataset actually generated; the paper's datasets
    // have 142k–1.9M traces which would dominate runtime without changing
    // the relative ratios.
    let fraction = 0.002 * cfg.scale;

    // Fig. 13: dataset descriptions.
    let describe: Vec<Vec<String>> = ALIBABA_DATASETS
        .iter()
        .map(|d| {
            vec![
                d.name.to_owned(),
                d.trace_number.to_string(),
                d.api_number.to_string(),
                d.average_depth.to_string(),
                d.scaled_trace_count(fraction).to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 13 — dataset descriptions",
        &[
            "dataset",
            "paper trace #",
            "API #",
            "avg depth",
            "generated traces",
        ],
        &describe,
    );

    let mint_config = MintConfig::default();
    let mut rows = Vec::new();
    for dataset in ALIBABA_DATASETS {
        let mut generator = dataset.generator(cfg.seed);
        let traces = generator.generate(dataset.scaled_trace_count(fraction));

        // The common raw representation: one text line per span.
        let lines: Vec<String> = traces
            .iter()
            .flat_map(|t| {
                render_trace_text(t)
                    .lines()
                    .map(str::to_owned)
                    .collect::<Vec<_>>()
            })
            .collect();
        let raw_text_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();

        let logzip = LogZip::new().compress(&lines);
        let logreducer = LogReducer::new().compress(&lines);
        let clp = Clp::new().compress(&lines);

        let ratio_of = |compressed: u64| raw_text_bytes as f64 / compressed.max(1) as f64;
        let without_sp = mint_compressed_size(&traces, &mint_config, false, true);
        let without_tp = mint_compressed_size(&traces, &mint_config, true, false);
        let full = mint_compressed_size(&traces, &mint_config, true, true);

        rows.push(vec![
            dataset.name.to_owned(),
            format!("{:.2}", logzip.ratio()),
            format!("{:.2}", logreducer.ratio()),
            format!("{:.2}", clp.ratio()),
            format!("{:.2}", ratio_of(without_sp.compressed_bytes())),
            format!("{:.2}", ratio_of(without_tp.compressed_bytes())),
            format!("{:.2}", ratio_of(full.compressed_bytes())),
        ]);
    }

    print_table(
        "Table 4 — compression ratio (higher is better)",
        &[
            "dataset",
            "LogZip",
            "LogReducer",
            "CLP",
            "w/o Sp",
            "w/o Tp",
            "Mint",
        ],
        &rows,
    );
    println!(
        "\nPaper's shape to check: Mint has the highest ratio on every dataset, clearly above \
         CLP/LogReducer/LogZip, and both ablations (w/o Sp, w/o Tp) fall between the log \
         compressors and full Mint."
    );
}
