//! Table 5: pattern-extraction results of the Span Parser and Trace Parser
//! on five Alibaba Cloud sub-services.
//!
//! Each sub-service's hour of traffic is replayed through a single Mint
//! agent (the sub-service's node); the table reports how many span-level and
//! trace-level patterns the parsers aggregate the raw traces into.

use bench::{print_table, ExpConfig};
use mint_core::{MintAgent, MintConfig};
use trace_model::SubTrace;
use workload::ALIBABA_SUB_SERVICES;

fn main() {
    let cfg = ExpConfig::from_env();
    let fraction = 0.02 * cfg.scale;

    let mut rows = Vec::new();
    for sub_service in ALIBABA_SUB_SERVICES {
        let mut generator = sub_service.generator(cfg.seed);
        let traces = generator.generate(sub_service.scaled_trace_count(fraction));

        let mut agent = MintAgent::new(sub_service.name, MintConfig::default());
        // Warm the parser on an early sample, as the real agent does.
        let warmup: Vec<_> = traces
            .iter()
            .take(200)
            .flat_map(|t| t.spans().to_vec())
            .collect();
        agent.warm_up(&warmup);

        for trace in &traces {
            // The whole sub-service is one node: the agent sees the entire
            // trace as a single sub-trace.
            let sub = SubTrace::new(trace.trace_id(), sub_service.name, trace.spans().to_vec());
            agent.ingest_sub_trace(&sub);
        }

        rows.push(vec![
            sub_service.name.to_owned(),
            traces.len().to_string(),
            format!(
                "{} (paper: {})",
                agent.span_parser().library().len(),
                sub_service.span_pattern_number
            ),
            format!(
                "{} (paper: {})",
                agent.topo_library().len(),
                sub_service.trace_pattern_number
            ),
        ]);
    }

    print_table(
        "Table 5 — pattern extraction results",
        &[
            "sub-service",
            "raw traces",
            "span-level patterns",
            "trace-level patterns",
        ],
        &rows,
    );
    println!(
        "\nShape to check: tens of thousands of raw traces collapse into on the order of ten \
         span patterns and a handful of topology patterns per sub-service."
    );
}
