//! Sharded-ingest load tests (Fig. 14 companion): wall-clock throughput of
//! the serial `MintDeployment` versus `ShardedDeployment` at increasing
//! shard counts, on the same production-like load-test plan Fig. 14 uses.
//!
//! Per *CounterPoint*'s advice the speedup is measured, not assumed: each row
//! reports the serial wall-clock, the per-shard-count wall-clock and the
//! derived speedup, and the harness asserts that every sharded run produces
//! the same cost report as the serial one (the deployments run the paper's
//! controlled-budget `AbnormalTag` sampling, for which sharded equivalence is
//! exact).
//!
//! The sharded wall-clock is additionally split into its two phases —
//! parallel **ingest** across the shard workers and the content-addressed
//! **merge** into the queryable backend — so the cost the incremental merge
//! removes is visible: before the incremental merge the merge phase rebuilt
//! `O(total state)` per batch and dominated at small batch sizes; now it is
//! `O(library + new state)`.
//!
//! ```bash
//! MINT_SCALE=4 cargo run --release --bin exp_sharding_loadtest
//! MINT_SMOKE=1 cargo run --release --bin exp_sharding_loadtest   # CI smoke
//! ```

use bench::{fmt_bytes, print_table, ExpConfig};
use mint::core::{MintConfig, MintDeployment, SamplingMode, ShardedDeployment};
use std::time::Instant;
use workload::{layered_application, load_test_plan, GeneratorConfig, TraceGenerator};

fn main() {
    let cfg = ExpConfig::from_env();
    let smoke = std::env::var("MINT_SMOKE").is_ok();
    let plan = load_test_plan();
    let plan = if smoke { &plan[..3] } else { &plan[..] };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let app = layered_application("prod", 8, 6, 26);
    let base = MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag);

    let mut rows = Vec::new();
    for (index, test) in plan.iter().enumerate() {
        let requests = cfg.scaled((test.total_requests() / 10) as usize);
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + index as u64)
            .with_abnormal_rate(0.02)
            .with_mean_interarrival_us(1_000_000 / test.qps.max(1));
        let mut generator =
            TraceGenerator::new(app.with_api_limit(test.api_count), generator_config);
        let traces = generator.generate(requests);

        let mut serial = MintDeployment::new(base.clone());
        let serial_start = Instant::now();
        let serial_report = serial.process(&traces);
        let serial_elapsed = serial_start.elapsed();

        let mut timings = Vec::new();
        for &shards in shard_counts {
            let mut sharded = ShardedDeployment::new(base.clone().with_shard_count(shards));
            let start = Instant::now();
            let report = sharded.process(&traces);
            let elapsed = start.elapsed();
            assert_eq!(
                report, serial_report,
                "{}: {shards}-shard report diverged from serial",
                test.name
            );
            timings.push((
                shards,
                elapsed,
                sharded.last_ingest_time(),
                sharded.last_merge_time(),
            ));
        }

        let ingest = |elapsed: std::time::Duration| {
            format!("{:.0}", requests as f64 / elapsed.as_secs_f64().max(1e-9))
        };
        rows.push(vec![
            test.name.to_owned(),
            format!("{} QPS, {} APIs, {requests} req", test.qps, test.api_count),
            ingest(serial_elapsed),
            timings
                .iter()
                .map(|(shards, elapsed, _, _)| format!("{shards}:{}", ingest(*elapsed)))
                .collect::<Vec<_>>()
                .join("  "),
            timings
                .iter()
                .map(|(shards, elapsed, _, _)| {
                    format!(
                        "{shards}:{:.2}x",
                        serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
                    )
                })
                .collect::<Vec<_>>()
                .join("  "),
            timings
                .iter()
                .map(|(shards, _, ingest_time, merge_time)| {
                    format!(
                        "{shards}:{:.0}+{:.0}",
                        ingest_time.as_secs_f64() * 1e3,
                        merge_time.as_secs_f64() * 1e3
                    )
                })
                .collect::<Vec<_>>()
                .join("  "),
            fmt_bytes(serial_report.network.total_bytes()),
        ]);
    }

    print_table(
        "Sharded ingest load tests (serial vs ShardedDeployment; reports verified identical)",
        &[
            "test",
            "load",
            "serial (traces/s)",
            "sharded (traces/s)",
            "speedup",
            "ingest+merge (ms)",
            "tracing egress",
        ],
        &rows,
    );
    println!(
        "\nShape to check: every sharded run matches the serial cost report exactly \
         (asserted), throughput scales with shard count until the workload per shard \
         becomes too small to amortize thread + routing overhead, and the merge \
         column stays a small fraction of the ingest column — the incremental merge \
         interns only per-batch-new state instead of rebuilding O(total state)."
    );
}
