//! Sharded-ingest load tests (Fig. 14 companion): wall-clock throughput of
//! the serial `MintDeployment` versus `ShardedDeployment` at increasing
//! shard counts, on the same production-like load-test plan Fig. 14 uses.
//!
//! Per *CounterPoint*'s advice the speedup is measured, not assumed: each row
//! reports the serial wall-clock, the per-shard-count wall-clock and the
//! derived speedup, and the harness asserts that every sharded run produces
//! the same cost report as the serial one (the deployments run the paper's
//! controlled-budget `AbnormalTag` sampling, for which sharded equivalence is
//! exact).
//!
//! ```bash
//! MINT_SCALE=4 cargo run --release --bin exp_sharding_loadtest
//! ```

use bench::{fmt_bytes, print_table, ExpConfig};
use mint::core::{MintConfig, MintDeployment, SamplingMode, ShardedDeployment};
use std::time::Instant;
use workload::{layered_application, load_test_plan, GeneratorConfig, TraceGenerator};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let cfg = ExpConfig::from_env();
    let plan = load_test_plan();
    let app = layered_application("prod", 8, 6, 26);
    let base = MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag);

    let mut rows = Vec::new();
    for (index, test) in plan.iter().enumerate() {
        let requests = cfg.scaled((test.total_requests() / 10) as usize);
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + index as u64)
            .with_abnormal_rate(0.02)
            .with_mean_interarrival_us(1_000_000 / test.qps.max(1));
        let mut generator =
            TraceGenerator::new(app.with_api_limit(test.api_count), generator_config);
        let traces = generator.generate(requests);

        let mut serial = MintDeployment::new(base.clone());
        let serial_start = Instant::now();
        let serial_report = serial.process(&traces);
        let serial_elapsed = serial_start.elapsed();

        let mut timings = Vec::new();
        for shards in SHARD_COUNTS {
            let mut sharded = ShardedDeployment::new(base.clone().with_shard_count(shards));
            let start = Instant::now();
            let report = sharded.process(&traces);
            let elapsed = start.elapsed();
            assert_eq!(
                report, serial_report,
                "{}: {shards}-shard report diverged from serial",
                test.name
            );
            timings.push((shards, elapsed));
        }

        let ingest = |elapsed: std::time::Duration| {
            format!("{:.0}", requests as f64 / elapsed.as_secs_f64().max(1e-9))
        };
        rows.push(vec![
            test.name.to_owned(),
            format!("{} QPS, {} APIs, {requests} req", test.qps, test.api_count),
            ingest(serial_elapsed),
            timings
                .iter()
                .map(|(shards, elapsed)| format!("{shards}:{}", ingest(*elapsed)))
                .collect::<Vec<_>>()
                .join("  "),
            timings
                .iter()
                .map(|(shards, elapsed)| {
                    format!(
                        "{shards}:{:.2}x",
                        serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
                    )
                })
                .collect::<Vec<_>>()
                .join("  "),
            fmt_bytes(serial_report.network.total_bytes()),
        ]);
    }

    print_table(
        "Sharded ingest load tests (serial vs ShardedDeployment; reports verified identical)",
        &[
            "test",
            "load",
            "serial (traces/s)",
            "sharded (traces/s)",
            "speedup",
            "tracing egress",
        ],
        &rows,
    );
    println!(
        "\nShape to check: every sharded run matches the serial cost report exactly \
         (asserted), throughput scales with shard count until the workload per shard \
         becomes too small to amortize thread + routing overhead, and the paper-scale \
         MINT_SCALE=4+ runs show the clearest speedups."
    );
}
