//! Sharded-ingest load tests (Fig. 14 companion): wall-clock throughput of
//! the serial `MintDeployment` versus `ShardedDeployment` at increasing
//! shard counts, on the same production-like load-test plan Fig. 14 uses.
//!
//! Per *CounterPoint*'s advice the speedup is measured, not assumed: each row
//! reports the serial wall-clock, the per-shard-count wall-clock and the
//! derived speedup, and the harness asserts that every sharded run produces
//! the same cost report as the serial one (the deployments run the paper's
//! controlled-budget `AbnormalTag` sampling, for which sharded equivalence is
//! exact).
//!
//! The sharded wall-clock is additionally split into its two phases —
//! parallel **ingest** across the shard workers and the content-addressed
//! **merge** into the queryable backend — so the cost the incremental merge
//! removes is visible: before the incremental merge the merge phase rebuilt
//! `O(total state)` per batch and dominated at small batch sizes; now it is
//! `O(library + new state)`.
//!
//! ```bash
//! MINT_SCALE=4 cargo run --release --bin exp_sharding_loadtest
//! MINT_SMOKE=1 cargo run --release --bin exp_sharding_loadtest   # CI smoke
//! ```

use bench::ingest_json::{self, JsonObj};
use bench::{fmt_bytes, print_table, ExpConfig};
use mint::core::{MintConfig, MintDeployment, SamplingMode, ShardedDeployment};
use std::time::{Duration, Instant};
use workload::{layered_application, load_test_plan, GeneratorConfig, TraceGenerator};

fn main() {
    let cfg = ExpConfig::from_env();
    let smoke = std::env::var("MINT_SMOKE").is_ok();
    let plan = load_test_plan();
    let plan = if smoke { &plan[..3] } else { &plan[..] };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let app = layered_application("prod", 8, 6, 26);
    let base = MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag);

    let mut rows = Vec::new();
    let mut total_spans = 0usize;
    let mut total_requests = 0usize;
    let mut serial_total = Duration::ZERO;
    let mut sharded_totals: Vec<Duration> = vec![Duration::ZERO; shard_counts.len()];
    for (index, test) in plan.iter().enumerate() {
        let requests = cfg.scaled((test.total_requests() / 10) as usize);
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + index as u64)
            .with_abnormal_rate(0.02)
            .with_mean_interarrival_us(1_000_000 / test.qps.max(1));
        let mut generator =
            TraceGenerator::new(app.with_api_limit(test.api_count), generator_config);
        let traces = generator.generate(requests);

        let mut serial = MintDeployment::new(base.clone());
        let serial_start = Instant::now();
        let serial_report = serial.process(&traces);
        let serial_elapsed = serial_start.elapsed();
        total_spans += traces.span_count();
        total_requests += requests;
        serial_total += serial_elapsed;

        let mut timings = Vec::new();
        for (slot, &shards) in shard_counts.iter().enumerate() {
            let mut sharded = ShardedDeployment::new(base.clone().with_shard_count(shards));
            let start = Instant::now();
            let report = sharded.process(&traces);
            let elapsed = start.elapsed();
            assert_eq!(
                report, serial_report,
                "{}: {shards}-shard report diverged from serial",
                test.name
            );
            sharded_totals[slot] += elapsed;
            timings.push((
                shards,
                elapsed,
                sharded.last_ingest_time(),
                sharded.last_merge_time(),
            ));
        }

        let ingest = |elapsed: std::time::Duration| {
            format!("{:.0}", requests as f64 / elapsed.as_secs_f64().max(1e-9))
        };
        rows.push(vec![
            test.name.to_owned(),
            format!("{} QPS, {} APIs, {requests} req", test.qps, test.api_count),
            ingest(serial_elapsed),
            timings
                .iter()
                .map(|(shards, elapsed, _, _)| format!("{shards}:{}", ingest(*elapsed)))
                .collect::<Vec<_>>()
                .join("  "),
            timings
                .iter()
                .map(|(shards, elapsed, _, _)| {
                    format!(
                        "{shards}:{:.2}x",
                        serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
                    )
                })
                .collect::<Vec<_>>()
                .join("  "),
            timings
                .iter()
                .map(|(shards, _, ingest_time, merge_time)| {
                    format!(
                        "{shards}:{:.0}+{:.0}",
                        ingest_time.as_secs_f64() * 1e3,
                        merge_time.as_secs_f64() * 1e3
                    )
                })
                .collect::<Vec<_>>()
                .join("  "),
            fmt_bytes(serial_report.network.total_bytes()),
        ]);
    }

    print_table(
        "Sharded ingest load tests (serial vs ShardedDeployment; reports verified identical)",
        &[
            "test",
            "load",
            "serial (traces/s)",
            "sharded (traces/s)",
            "speedup",
            "ingest+merge (ms)",
            "tracing egress",
        ],
        &rows,
    );
    // Persist the aggregate ingest trajectory as the `sharded_loadtest`
    // section of BENCH_ingest.json.
    let per_span = |elapsed: Duration| elapsed.as_nanos() as f64 / total_spans.max(1) as f64;
    let mut shards_obj = JsonObj::new(2);
    for (slot, &shards) in shard_counts.iter().enumerate() {
        let mut row = JsonObj::new(3);
        row.field_f64("ns_per_span", per_span(sharded_totals[slot]))
            .field_f64(
                "speedup_vs_serial",
                serial_total.as_secs_f64() / sharded_totals[slot].as_secs_f64().max(1e-9),
            );
        shards_obj.field_raw(&shards.to_string(), &row.finish());
    }
    let mut section = JsonObj::new(1);
    section
        .field_u64("tests", plan.len() as u64)
        .field_u64("requests", total_requests as u64)
        .field_u64("spans", total_spans as u64)
        .field_f64("serial_ns_per_span", per_span(serial_total))
        .field_raw("shards", &shards_obj.finish());
    let path = ingest_json::persist_section(&cfg, smoke, "sharded_loadtest", &section.finish());
    println!("wrote {path}");

    println!(
        "\nShape to check: every sharded run matches the serial cost report exactly \
         (asserted), throughput scales with shard count until the workload per shard \
         becomes too small to amortize thread + routing overhead, and the merge \
         column stays a small fraction of the ingest column — the incremental merge \
         interns only per-batch-new state instead of rebuilding O(total state)."
    );
}
