//! Table 3: top-1 accuracy of downstream root-cause analysis when fed the
//! trace data each framework retained under a 5% budget.
//!
//! 56 faults (5 types × a set of target services, Table 2) are injected into
//! OnlineBoutique and TrainTicket.  For every (framework, fault) pair the
//! framework processes the faulty workload, its retained trace views are
//! labelled, and each RCA method ranks candidate root causes.  A@1 is the
//! fraction of faults whose injected service ranks first.

use baselines::{Hindsight, MintFramework, OtHead, OtTail, Sieve, TracingFramework};
use bench::{print_table, rca_methods, ExpConfig};
use mint_core::MintConfig;
use rca::{label_anomalous, RcaCase};
use std::collections::HashMap;
use workload::{
    online_boutique, train_ticket, Application, FaultInjector, FaultType, GeneratorConfig,
    TraceGenerator,
};

fn fresh_frameworks() -> Vec<Box<dyn TracingFramework>> {
    vec![
        Box::new(OtHead::new(0.05)),
        Box::new(OtTail::new()),
        Box::new(Sieve::new(0.05)),
        Box::new(Hindsight::new()),
        Box::new(MintFramework::new(MintConfig::default())),
    ]
}

/// The services targeted by fault injection in each benchmark (Table 2's "56
/// faults" are 5 fault types over these targets, split across benchmarks).
fn targets(app: &Application) -> Vec<String> {
    let preferred: &[&str] = if app.name() == "online-boutique" {
        &[
            "cartservice",
            "paymentservice",
            "currencyservice",
            "shippingservice",
            "productcatalogservice",
            "recommendationservice",
        ]
    } else {
        &[
            "ts-order-service",
            "ts-travel-service",
            "ts-basic-service",
            "ts-seat-service",
            "ts-inside-payment-service",
        ]
    };
    preferred.iter().map(|s| (*s).to_owned()).collect()
}

fn main() {
    let cfg = ExpConfig::from_env();
    let requests_per_case = cfg.scaled(150);
    let methods = rca_methods();

    // accuracy[(benchmark, method, framework)] = (hits, cases)
    let mut accuracy: HashMap<(String, String, String), (u32, u32)> = HashMap::new();
    let mut total_faults = 0;

    for (bench_label, app) in [("OB", online_boutique()), ("TT", train_ticket())] {
        let targets = targets(&app);
        for (ti, target) in targets.iter().enumerate() {
            for (fi, fault) in FaultType::ALL.iter().enumerate() {
                total_faults += 1;
                let case_seed = cfg.seed + (ti * 31 + fi * 7) as u64;
                // Fresh workload per fault case.
                let generator_config = GeneratorConfig::default()
                    .with_seed(case_seed)
                    .with_abnormal_rate(0.0);
                let mut generator = TraceGenerator::new(app.clone(), generator_config);
                let mut traces = generator.generate(requests_per_case);
                let injector = FaultInjector::new(case_seed ^ 0xFA01);
                injector.inject(&mut traces, *fault, target);

                for mut framework in fresh_frameworks() {
                    framework.process(&traces);
                    let labelled = label_anomalous(&framework.analysis_views());
                    for method in &methods {
                        let case = RcaCase {
                            ground_truth: target.clone(),
                            ranking: method.rank(&labelled),
                        };
                        let entry = accuracy
                            .entry((
                                bench_label.to_owned(),
                                method.name().to_owned(),
                                framework.name().to_owned(),
                            ))
                            .or_insert((0, 0));
                        entry.1 += 1;
                        if case.hit_at(1) {
                            entry.0 += 1;
                        }
                    }
                }
            }
        }
    }

    let framework_names = ["OT-Head", "OT-Tail", "Sieve", "Hindsight", "Mint"];
    let mut rows = Vec::new();
    for bench_label in ["OB", "TT"] {
        for method in &methods {
            let mut row = vec![bench_label.to_owned(), method.name().to_owned()];
            for framework in framework_names {
                let (hits, cases) = accuracy
                    .get(&(
                        bench_label.to_owned(),
                        method.name().to_owned(),
                        framework.to_owned(),
                    ))
                    .copied()
                    .unwrap_or((0, 1));
                row.push(format!("{:.4}", hits as f64 / cases.max(1) as f64));
            }
            rows.push(row);
        }
    }

    let headers = [
        "benchmark",
        "RCA method",
        "OT-Head",
        "OT-Tail",
        "Sieve",
        "Hindsight",
        "Mint",
    ];
    print_table(
        "Table 3 — downstream RCA top-1 accuracy (A@1)",
        &headers,
        &rows,
    );
    println!(
        "\n{total_faults} faults injected (paper: 56). Paper's shape to check: Mint's column is \
         the highest for every method, baselines stay below ~0.38 while Mint reaches ~0.5-0.7."
    );
}
