//! Figure 12: number of user queries answered per day over a 14-day window.
//!
//! Every framework processes the same traffic under the same 5% retention
//! budget; the daily query workload then asks each one for specific trace
//! ids.  `Mint-Exact` counts queries answered with full information,
//! `Mint-Partial` counts those answered at least approximately — the paper's
//! claim is that Mint-Partial reaches the total (no misses).

use baselines::QueryOutcome;
use bench::{all_frameworks, print_table, ExpConfig};
use workload::{
    online_boutique, GeneratorConfig, QueryWorkload, QueryWorkloadConfig, TraceGenerator,
};

fn main() {
    let cfg = ExpConfig::from_env();
    let days = 14;
    let traces_per_day = cfg.scaled(400);

    let generator_config = GeneratorConfig::default()
        .with_seed(cfg.seed)
        .with_abnormal_rate(0.05);
    let mut generator = TraceGenerator::new(online_boutique(), generator_config);
    let traces = generator.generate(traces_per_day * days);

    let mut frameworks = all_frameworks();
    // OT-Full is the reference for volume, not part of the hit comparison.
    frameworks.retain(|f| f.name() != "OT-Full");
    for framework in frameworks.iter_mut() {
        framework.process(&traces);
    }

    let queries = QueryWorkload::generate(
        &traces,
        &QueryWorkloadConfig {
            days,
            queries_per_day: 250,
            abnormal_bias: 0.4,
            seed: cfg.seed ^ 0xBEEF,
        },
    );

    let mut rows = Vec::new();
    let mut totals: Vec<u64> = vec![0; frameworks.len() + 2];
    for (day, ids) in queries.iter() {
        let mut row = vec![format!("day {:02}", day + 1), ids.len().to_string()];
        totals[0] += ids.len() as u64;
        for (fi, framework) in frameworks.iter().enumerate() {
            let hits = if framework.name() == "Mint" {
                // Reported as exact / partial, matching the paper's series.
                let exact = ids
                    .iter()
                    .filter(|id| framework.query(**id).is_exact())
                    .count();
                let partial = ids
                    .iter()
                    .filter(|id| framework.query(**id).is_hit())
                    .count();
                totals[fi + 1] += exact as u64;
                totals[fi + 2] += partial as u64;
                format!("{exact} / {partial}")
            } else {
                let hits = ids
                    .iter()
                    .filter(|id| framework.query(**id) != QueryOutcome::Miss)
                    .count();
                totals[fi + 1] += hits as u64;
                hits.to_string()
            };
            row.push(hits);
        }
        rows.push(row);
    }

    let mut headers: Vec<&str> = vec!["day", "total queries"];
    let names: Vec<String> = frameworks
        .iter()
        .map(|f| {
            if f.name() == "Mint" {
                "Mint exact / partial".to_owned()
            } else {
                f.name().to_owned()
            }
        })
        .collect();
    headers.extend(names.iter().map(String::as_str));
    print_table("Fig. 12 — query hits per day (14 days)", &headers, &rows);

    println!("\nTotals: {} queries issued.", totals[0]);
    for (fi, framework) in frameworks.iter().enumerate() {
        if framework.name() == "Mint" {
            println!(
                "  Mint: {} exact hits, {} partial-or-better hits ({}% of all queries answered)",
                totals[fi + 1],
                totals[fi + 2],
                100 * totals[fi + 2] / totals[0].max(1)
            );
        } else {
            println!(
                "  {}: {} hits ({}%)",
                framework.name(),
                totals[fi + 1],
                100 * totals[fi + 1] / totals[0].max(1)
            );
        }
    }
}
