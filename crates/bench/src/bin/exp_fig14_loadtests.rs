//! Figure 14: end-to-end tracing overhead during 14 load tests on a
//! production-like microservice system, comparing No-Tracing, OT-Head (10%)
//! and Mint (10% head-compatible sampling plus its biased samplers).
//!
//! The paper reports four panels: ingress bandwidth (identical across
//! replicas, it is the business traffic), egress bandwidth (business +
//! tracing), CPU usage and memory usage.  Here:
//!
//! * ingress/business traffic is modelled from the request volume;
//! * tracing egress is the measured network cost of each framework;
//! * CPU is the measured wall-clock time each framework spends processing the
//!   batch (No-Tracing is zero by construction);
//! * memory is the resident footprint of the framework's agent-side state
//!   (buffers, pattern libraries) plus, for OT-Head, its export queue.

use baselines::{MintFramework, OtHead, TracingFramework};
use bench::{fmt_bytes, print_table, ExpConfig};
use mint_core::MintConfig;
use std::time::Instant;
use workload::{layered_application, load_test_plan, GeneratorConfig, TraceGenerator};

/// Approximate business payload per request (independent of tracing).
const BUSINESS_BYTES_PER_REQUEST: u64 = 2_300;

fn main() {
    let cfg = ExpConfig::from_env();
    let plan = load_test_plan();
    // The production system in the paper serves 8 APIs backed by web, MongoDB
    // and MySQL tiers; the layered application mirrors that shape.
    let app = layered_application("prod", 8, 6, 26);

    let mut rows = Vec::new();
    for (index, test) in plan.iter().enumerate() {
        let requests = cfg.scaled((test.total_requests() / 10) as usize);
        let generator_config = GeneratorConfig::default()
            .with_seed(cfg.seed + index as u64)
            .with_abnormal_rate(0.02)
            .with_mean_interarrival_us(1_000_000 / test.qps.max(1));
        let mut generator =
            TraceGenerator::new(app.with_api_limit(test.api_count), generator_config);
        let traces = generator.generate(requests);

        let minutes = requests as f64 / (test.qps as f64 * 60.0);
        let ingress_mb_per_min =
            (requests as u64 * BUSINESS_BYTES_PER_REQUEST) as f64 / 1e6 / minutes.max(1e-9);

        // OT-Head at 10%, as in the paper's comparison.
        let mut ot = OtHead::new(0.10);
        let ot_start = Instant::now();
        let ot_report = ot.process(&traces);
        let ot_cpu = ot_start.elapsed();

        let mint_config = MintConfig {
            head_sampling_rate: 0.10,
            ..MintConfig::default()
        };
        let mut mint = MintFramework::new(mint_config);
        let mint_start = Instant::now();
        let mint_report = mint.process(&traces);
        let mint_cpu = mint_start.elapsed();

        let egress = |tracing_bytes: u64| {
            (requests as u64 * BUSINESS_BYTES_PER_REQUEST + tracing_bytes) as f64
                / 1e6
                / minutes.max(1e-9)
        };
        let mint_memory: usize = mint
            .deployment()
            .agents()
            .map(|a| a.params_buffer().used_bytes() + a.library_upload_bytes())
            .sum();
        let ot_memory = (ot_report.network_bytes / 50).max(1); // export queue snapshot

        rows.push(vec![
            test.name.to_owned(),
            format!("{} QPS, {} APIs", test.qps, test.api_count),
            format!("{ingress_mb_per_min:.1}"),
            format!(
                "{:.1} / {:.1} / {:.1}",
                egress(0),
                egress(ot_report.network_bytes),
                egress(mint_report.network_bytes)
            ),
            format!(
                "0.0 / {:.2} / {:.2}",
                ot_cpu.as_secs_f64(),
                mint_cpu.as_secs_f64()
            ),
            format!(
                "0 / {} / {}",
                fmt_bytes(ot_memory),
                fmt_bytes(mint_memory as u64)
            ),
        ]);
    }

    print_table(
        "Fig. 14 — load tests (No-Tracing / OT-Head / Mint)",
        &[
            "test",
            "load",
            "ingress (MB/min)",
            "egress (MB/min)",
            "CPU (s)",
            "tracing memory",
        ],
        &rows,
    );
    println!(
        "\nShape to check: ingress is identical across replicas; Mint's egress increment over \
         No-Tracing is a few percent while OT-Head adds ~20%; Mint's CPU cost stays the same \
         order of magnitude as OT-Head; memory stays bounded by the 4 MiB params buffers plus \
         the pattern libraries."
    );
}
