//! Hand-rolled persistence for `BENCH_ingest.json` (schema `mint-ingest-v1`).
//!
//! The ingest-performance trajectory is written by three binaries — the
//! per-phase profiler (`exp_ingest_profile`) and the two loadtests
//! (`exp_sharding_loadtest`, `exp_streaming_loadtest`) — into **one** JSON
//! document, each owning one top-level section.  Because the vendored serde
//! is derive-markers only, both the writer and the section-preserving reader
//! are hand-rolled here: a string-aware balanced-brace scanner splits the
//! existing document into `(key, raw value)` pairs so a binary can rewrite
//! its own section without disturbing (or even understanding) the others.
//!
//! Document shape:
//!
//! ```json
//! {
//!   "schema": "mint-ingest-v1",
//!   "scale": 1,
//!   "seed": 42405,
//!   "smoke": false,
//!   "profile": { ... },
//!   "sharded_loadtest": { ... },
//!   "streaming_loadtest": { ... }
//! }
//! ```
//!
//! The output path defaults to `BENCH_ingest.json` in the working directory
//! and can be overridden with `MINT_INGEST_OUT`.

use crate::ExpConfig;

/// Schema identifier stamped into the document header.
pub const SCHEMA: &str = "mint-ingest-v1";

/// Header fields rewritten by whichever binary persisted last.
const HEADER_KEYS: [&str; 4] = ["schema", "scale", "seed", "smoke"];

/// Describes one section-merged benchmark document: its schema string, the
/// canonical ordering of its well-known sections, and where it lives on disk.
///
/// The section-merging writer below is shared by every `BENCH_*.json`
/// trajectory document; a new document only needs a new `DocSpec` const
/// (see [`INGEST_DOC`] here and `QUERY_DOC` in [`crate::query_json`]).
pub struct DocSpec {
    /// Schema identifier stamped into the document header.
    pub schema: &'static str,
    /// Well-known sections, in the order they are rendered; unknown sections
    /// are preserved after these in their original order.
    pub section_order: &'static [&'static str],
    /// Environment variable overriding the output path.
    pub env_var: &'static str,
    /// Output path used when the environment variable is unset.
    pub default_path: &'static str,
}

/// The `BENCH_ingest.json` document (schema `mint-ingest-v1`).
pub const INGEST_DOC: DocSpec = DocSpec {
    schema: SCHEMA,
    section_order: &["profile", "sharded_loadtest", "streaming_loadtest"],
    env_var: "MINT_INGEST_OUT",
    default_path: "BENCH_ingest.json",
};

impl DocSpec {
    /// Resolves the output path (`self.env_var`, default `self.default_path`).
    pub fn out_path(&self) -> String {
        std::env::var(self.env_var).unwrap_or_else(|_| self.default_path.to_owned())
    }

    /// Merges `body` in as the `section` top-level key of `existing` (or of a
    /// fresh document), rewriting the header fields and preserving every
    /// other section untouched.
    pub fn merge_section(
        &self,
        existing: Option<&str>,
        cfg: &ExpConfig,
        smoke: bool,
        section: &str,
        body: &str,
    ) -> String {
        let mut sections: Vec<(String, String)> = existing
            .and_then(split_top_level)
            .unwrap_or_default()
            .into_iter()
            .filter(|(key, _)| !HEADER_KEYS.contains(&key.as_str()))
            .collect();
        match sections.iter_mut().find(|(key, _)| key == section) {
            Some(slot) => slot.1 = body.to_owned(),
            None => sections.push((section.to_owned(), body.to_owned())),
        }
        // Stable sort: well-known sections in canonical order, the rest keep
        // their original relative order after them.
        sections.sort_by_key(|(key, _)| {
            self.section_order
                .iter()
                .position(|known| known == key)
                .unwrap_or(self.section_order.len())
        });

        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
        out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
        out.push_str(&format!("  \"smoke\": {smoke}"));
        for (key, value) in &sections {
            out.push_str(",\n");
            out.push_str(&format!("  \"{}\": {}", json_escape(key), value));
        }
        out.push_str("\n}\n");
        out
    }

    /// Reads the current document (if any), merges `body` in as `section`,
    /// and writes the result back.  Returns the path written.
    pub fn persist_section(
        &self,
        cfg: &ExpConfig,
        smoke: bool,
        section: &str,
        body: &str,
    ) -> String {
        let path = self.out_path();
        let existing = std::fs::read_to_string(&path).ok();
        let doc = self.merge_section(existing.as_deref(), cfg, smoke, section, body);
        std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        path
    }
}

/// Resolves the output path (`MINT_INGEST_OUT`, default `BENCH_ingest.json`).
pub fn out_path() -> String {
    INGEST_DOC.out_path()
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incrementally builds one pretty-printed JSON object at a fixed indent
/// depth (two spaces per level).  Values are either escaped scalars or
/// pre-rendered raw JSON (for nesting).
pub struct JsonObj {
    indent: String,
    fields: Vec<String>,
}

impl JsonObj {
    /// Creates a builder whose *members* are indented `level + 1` deep.
    pub fn new(level: usize) -> Self {
        JsonObj {
            indent: "  ".repeat(level),
            fields: Vec::new(),
        }
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.field_raw(key, &format!("\"{}\"", json_escape(value)))
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.field_raw(key, &value.to_string())
    }

    /// Adds a float field.
    ///
    /// Finite values use Rust's shortest round-trip `Display` formatting,
    /// so the exact value is recoverable by any JSON parser (the previous
    /// `{:.1}` rendering silently truncated ns/span measurements to one
    /// decimal place).  Non-finite values (NaN, ±inf) have no JSON number
    /// representation and are written as `null` instead of emitting the
    /// invalid literals `NaN`/`inf`.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            self.field_raw(key, &format!("{value}"))
        } else {
            self.field_raw(key, "null")
        }
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Adds a field whose value is pre-rendered JSON (object, array, …).
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.fields
            .push(format!("\"{}\": {}", json_escape(key), raw));
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        if self.fields.is_empty() {
            return "{}".to_owned();
        }
        let member_indent = format!("{}  ", self.indent);
        let mut out = String::from("{\n");
        for (i, field) in self.fields.iter().enumerate() {
            out.push_str(&member_indent);
            out.push_str(field);
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&self.indent);
        out.push('}');
        out
    }
}

/// Renders a JSON array of pre-rendered values at the given indent level.
pub fn json_array(level: usize, values: &[String]) -> String {
    if values.is_empty() {
        return "[]".to_owned();
    }
    let indent = "  ".repeat(level);
    let member_indent = format!("{indent}  ");
    let mut out = String::from("[\n");
    for (i, value) in values.iter().enumerate() {
        out.push_str(&member_indent);
        out.push_str(value);
        if i + 1 < values.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&indent);
    out.push(']');
    out
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

/// Finds the end of a JSON string starting at the opening quote `start`;
/// returns the raw (still-escaped) inner slice and the index just past the
/// closing quote.  Byte-wise scanning is UTF-8-safe: multibyte sequences
/// never contain `"` or `\` bytes.
fn scan_string(doc: &str, start: usize) -> Option<(&str, usize)> {
    let bytes = doc.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((&doc[start + 1..i], i + 1)),
            _ => i += 1,
        }
    }
    None
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs.
/// Values are returned as unparsed slices of the document (trimmed), so a
/// section written by another binary survives a rewrite byte-for-byte.
/// Returns `None` on anything that does not look like a JSON object — the
/// caller then starts a fresh document instead of guessing.
fn split_top_level(doc: &str) -> Option<Vec<(String, String)>> {
    let bytes = doc.as_bytes();
    let mut i = 0usize;
    skip_ws(bytes, &mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    let mut pairs = Vec::new();
    loop {
        skip_ws(bytes, &mut i);
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'}' {
            return Some(pairs);
        }
        if bytes[i] != b'"' {
            return None;
        }
        let (key, after_key) = scan_string(doc, i)?;
        i = after_key;
        skip_ws(bytes, &mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(bytes, &mut i);
        let start = i;
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let (_, after) = scan_string(doc, i)?;
                    i = after;
                }
                b'{' | b'[' => {
                    depth += 1;
                    i += 1;
                }
                b'}' | b']' if depth > 0 => {
                    depth -= 1;
                    i += 1;
                }
                b'}' | b']' => break,
                b',' if depth == 0 => break,
                _ => i += 1,
            }
        }
        if depth != 0 || start == i {
            return None;
        }
        pairs.push((key.to_owned(), doc[start..i].trim_end().to_owned()));
        skip_ws(bytes, &mut i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// Merges `body` in as the `section` top-level key of `existing` (or of a
/// fresh document), rewriting the header fields and preserving every other
/// section untouched.  Delegates to [`INGEST_DOC`].
pub fn merge_section(
    existing: Option<&str>,
    cfg: &ExpConfig,
    smoke: bool,
    section: &str,
    body: &str,
) -> String {
    INGEST_DOC.merge_section(existing, cfg, smoke, section, body)
}

/// Reads the current document (if any), merges `body` in as `section`, and
/// writes the result back.  Returns the path written.  Delegates to
/// [`INGEST_DOC`].
pub fn persist_section(cfg: &ExpConfig, smoke: bool, section: &str, body: &str) -> String {
    INGEST_DOC.persist_section(cfg, smoke, section, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig {
            scale: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("héllo"), "héllo");
    }

    #[test]
    fn fresh_document_has_header_and_section() {
        let doc = merge_section(None, &cfg(), false, "profile", "{\"x\": 1}");
        assert!(doc.contains("\"schema\": \"mint-ingest-v1\""));
        assert!(doc.contains("\"scale\": 1"));
        assert!(doc.contains("\"seed\": 7"));
        assert!(doc.contains("\"smoke\": false"));
        assert!(doc.contains("\"profile\": {\"x\": 1}"));
    }

    #[test]
    fn rewriting_one_section_preserves_the_others() {
        let first = merge_section(None, &cfg(), false, "streaming_loadtest", "{\"a\": [1, 2]}");
        let second = merge_section(Some(&first), &cfg(), true, "profile", "{\"b\": 3}");
        assert!(second.contains("\"a\": [1, 2]"));
        assert!(second.contains("\"b\": 3"));
        assert!(second.contains("\"smoke\": true"));
        // Canonical ordering: profile before streaming_loadtest even though
        // it was written second.
        let profile_at = second.find("\"profile\"").unwrap();
        let streaming_at = second.find("\"streaming_loadtest\"").unwrap();
        assert!(profile_at < streaming_at);
        // Replacing a section swaps only that section.
        let third = merge_section(Some(&second), &cfg(), false, "profile", "{\"b\": 9}");
        assert!(third.contains("\"b\": 9"));
        assert!(!third.contains("\"b\": 3"));
        assert!(third.contains("\"a\": [1, 2]"));
    }

    #[test]
    fn scanner_handles_strings_with_structure_characters() {
        let doc =
            "{\"schema\": \"x\", \"s\": {\"msg\": \"a } , [ \\\" b\", \"n\": [1, {\"k\": 2}]}}";
        let pairs = split_top_level(doc).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].0, "s");
        assert!(pairs[1].1.contains("a } , [ \\\" b"));
        assert!(pairs[1].1.ends_with('}'));
    }

    #[test]
    fn corrupt_existing_document_starts_fresh() {
        for corrupt in ["not json", "[1, 2]", "{\"unterminated\": ", "{\"k\" 1}"] {
            let doc = merge_section(Some(corrupt), &cfg(), false, "profile", "{}");
            assert!(doc.contains("\"profile\": {}"), "from {corrupt:?}");
            assert!(split_top_level(&doc).is_some());
        }
    }

    #[test]
    fn builder_renders_nested_objects() {
        let mut inner = JsonObj::new(2);
        inner.field_f64("before_ns_per_span", 120.25);
        inner.field_f64("after_ns_per_span", 80.0);
        let mut outer = JsonObj::new(1);
        outer
            .field_str("name", "tokenize")
            .field_u64("spans", 42)
            .field_bool("ok", true)
            .field_raw("numbers", &inner.finish());
        let rendered = outer.finish();
        assert!(rendered.contains("\"name\": \"tokenize\""));
        assert!(rendered.contains("\"before_ns_per_span\": 120.25"));
        // Round-trips through the scanner.
        let doc = merge_section(None, &cfg(), false, "profile", &rendered);
        let pairs = split_top_level(&doc).unwrap();
        assert!(pairs
            .iter()
            .any(|(k, v)| k == "profile" && v.contains("tokenize")));
    }

    #[test]
    fn floats_render_at_full_precision() {
        // Shortest round-trip formatting: no decimal truncation, and parsing
        // the rendered literal recovers the exact value.
        for value in [120.25, 0.1, 1234.56789, 1e-9, 3.0e17, -7.125] {
            let mut obj = JsonObj::new(0);
            obj.field_f64("v", value);
            let rendered = obj.finish();
            let literal = rendered
                .split("\"v\": ")
                .nth(1)
                .unwrap()
                .trim_end_matches(['\n', '}', ' ']);
            assert_eq!(literal.parse::<f64>().unwrap(), value, "from {rendered}");
        }
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut obj = JsonObj::new(0);
        obj.field_f64("nan", f64::NAN)
            .field_f64("pos_inf", f64::INFINITY)
            .field_f64("neg_inf", f64::NEG_INFINITY);
        let rendered = obj.finish();
        assert!(rendered.contains("\"nan\": null"));
        assert!(rendered.contains("\"pos_inf\": null"));
        assert!(rendered.contains("\"neg_inf\": null"));
        assert!(!rendered.contains("NaN"));
        assert!(!rendered.contains("inf,"));
    }

    #[test]
    fn doc_specs_are_independent() {
        let spec = DocSpec {
            schema: "mint-other-v1",
            section_order: &["beta", "alpha"],
            env_var: "MINT_OTHER_OUT",
            default_path: "BENCH_other.json",
        };
        let first = spec.merge_section(None, &cfg(), false, "alpha", "{\"a\": 1}");
        assert!(first.contains("\"schema\": \"mint-other-v1\""));
        let second = spec.merge_section(Some(&first), &cfg(), false, "beta", "{\"b\": 2}");
        // Canonical ordering comes from the spec, not from write order.
        let beta_at = second.find("\"beta\"").unwrap();
        let alpha_at = second.find("\"alpha\"").unwrap();
        assert!(beta_at < alpha_at);
    }

    #[test]
    fn json_array_renders_and_roundtrips() {
        assert_eq!(json_array(1, &[]), "[]");
        let arr = json_array(1, &["1".into(), "{\"a\": 2}".into()]);
        let doc = merge_section(None, &cfg(), false, "profile", &arr);
        let pairs = split_top_level(&doc).unwrap();
        assert_eq!(pairs.iter().find(|(k, _)| k == "profile").unwrap().1, arr);
    }
}
