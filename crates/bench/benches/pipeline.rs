//! End-to-end pipeline benchmarks: per-request cost of a full Mint deployment
//! versus the OpenTelemetry head-sampling baseline, backing Fig. 14/15's
//! claim that Mint's agent-side work is cheap enough for production use.

use baselines::{MintFramework, OtHead, TracingFramework};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mint_core::MintConfig;
use workload::{online_boutique, GeneratorConfig, TraceGenerator};

fn workload(n: usize) -> trace_model::TraceSet {
    TraceGenerator::new(
        online_boutique(),
        GeneratorConfig::default()
            .with_seed(99)
            .with_abnormal_rate(0.05),
    )
    .generate(n)
}

fn bench_end_to_end(c: &mut Criterion) {
    let traces = workload(300);
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(traces.len() as u64));
    group.sample_size(10);

    group.bench_function("mint_process_300_traces", |b| {
        b.iter_batched(
            || MintFramework::new(MintConfig::default()),
            |mut mint| {
                mint.process(&traces);
                mint
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("ot_head_process_300_traces", |b| {
        b.iter_batched(
            || OtHead::new(0.05),
            |mut ot| {
                ot.process(&traces);
                ot
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_query_path(c: &mut Criterion) {
    let traces = workload(400);
    let mut mint = MintFramework::new(MintConfig::default());
    mint.process(&traces);
    let ids: Vec<_> = traces.iter().map(|t| t.trace_id()).collect();

    let mut group = c.benchmark_group("query");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("mint_query_all_traces", |b| {
        b.iter(|| {
            let mut exact = 0usize;
            for id in &ids {
                if mint.query(*id).is_exact() {
                    exact += 1;
                }
            }
            exact
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_query_path);
criterion_main!(benches);
