//! Criterion micro-benchmarks of Mint's hot agent-side path: hierarchical
//! attribute parsing, span pattern mapping and topology encoding.  These back
//! the performance claims of §5.4 (Mint is cheap enough for production) and
//! provide the prefix-index vs linear-scan ablation for the design choice in
//! §3.2.1.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mint_core::span_parser::{StringAttributeParser, StringTemplate};
use mint_core::{MintConfig, SpanParser, TraceParser};
use std::collections::HashMap;
use trace_model::{PatternId, SpanId, SubTrace};
use workload::{online_boutique, GeneratorConfig, TraceGenerator};

fn workload_spans(n: usize) -> Vec<trace_model::Span> {
    let mut generator = TraceGenerator::new(
        online_boutique(),
        GeneratorConfig::default()
            .with_seed(123)
            .with_abnormal_rate(0.02),
    );
    generator
        .generate(n)
        .iter()
        .flat_map(|t| t.spans().to_vec())
        .collect()
}

fn bench_span_parsing(c: &mut Criterion) {
    let spans = workload_spans(300);
    let mut group = c.benchmark_group("span_parser");
    group.throughput(Throughput::Elements(spans.len() as u64));
    group.bench_function("parse_spans_warm", |b| {
        b.iter_batched(
            || {
                let mut parser = SpanParser::new(&MintConfig::default());
                parser.warm_up(&spans[..spans.len().min(500)]);
                parser
            },
            |mut parser| {
                for span in &spans {
                    let _ = parser.parse(span);
                }
                parser
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_attribute_matching_ablation(c: &mut Criterion) {
    // The design-choice ablation: prefix-index candidate pruning vs scoring
    // every template linearly.
    let values: Vec<String> = (0..64)
        .map(|i| {
            format!(
                "SELECT col{} FROM table{} WHERE tenant = {} AND id = {}",
                i % 8,
                i % 16,
                i,
                i * 97
            )
        })
        .collect();
    let probe: Vec<String> = (0..512)
        .map(|i| {
            format!(
                "SELECT col{} FROM table{} WHERE tenant = {} AND id = {}",
                i % 8,
                i % 16,
                i,
                i * 13
            )
        })
        .collect();

    let mut group = c.benchmark_group("attribute_matching");
    group.throughput(Throughput::Elements(probe.len() as u64));
    for (label, linear) in [("prefix_index", false), ("linear_scan", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut parser = if linear {
                        StringAttributeParser::new(0.8).with_linear_scan()
                    } else {
                        StringAttributeParser::new(0.8)
                    };
                    for value in &values {
                        parser.parse(value);
                    }
                    parser
                },
                |mut parser| {
                    for value in &probe {
                        let _ = parser.parse(value);
                    }
                    parser
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_topology_encoding(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(
        online_boutique(),
        GeneratorConfig::default()
            .with_seed(7)
            .with_abnormal_rate(0.0),
    );
    let traces = generator.generate(200);
    let subs: Vec<SubTrace> = traces.iter().flat_map(SubTrace::split_by_service).collect();
    let mappings: Vec<HashMap<SpanId, PatternId>> = subs
        .iter()
        .map(|sub| {
            sub.spans()
                .iter()
                .map(|s| {
                    (
                        s.span_id(),
                        PatternId::from_u128(s.name().len() as u128 + 1),
                    )
                })
                .collect()
        })
        .collect();
    let parser = TraceParser::new();

    let mut group = c.benchmark_group("trace_parser");
    group.throughput(Throughput::Elements(subs.len() as u64));
    group.bench_function("encode_sub_traces", |b| {
        b.iter(|| {
            let mut nodes = 0;
            for (sub, mapping) in subs.iter().zip(mappings.iter()) {
                nodes += parser.encode(sub, mapping).node_count();
            }
            nodes
        })
    });
    group.finish();
}

fn bench_template_extraction(c: &mut Criterion) {
    let template = {
        let mut t = StringTemplate::from_raw_tokens(&mint_core::tokenize(
            "SELECT * FROM orders WHERE tenant = 17 AND id = 999",
        ));
        t.generalize(&mint_core::tokenize(
            "SELECT * FROM shipments WHERE tenant = 3 AND id = 4",
        ));
        t
    };
    let tokens = mint_core::tokenize("SELECT * FROM payments WHERE tenant = 9 AND id = 123456");
    c.bench_function("template_match_and_extract", |b| {
        b.iter(|| template.match_and_extract(&tokens))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_span_parsing,
        bench_attribute_matching_ablation,
        bench_topology_encoding,
        bench_template_extraction
);
criterion_main!(benches);
