//! Criterion micro-benchmarks of the Bloom filter used for metadata
//! mounting: insert and membership-probe throughput at the paper's default
//! configuration (4 KiB buffer, 1% false-positive probability).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mint_bloom::BloomFilter;

fn bench_insert(c: &mut Criterion) {
    let ids: Vec<u128> = (0..4_096u128).collect();
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("insert_4k_trace_ids", |b| {
        b.iter_batched(
            || BloomFilter::with_byte_budget(4 * 1024, 0.01),
            |mut filter| {
                for id in &ids {
                    filter.insert(id);
                }
                filter
            },
            BatchSize::SmallInput,
        )
    });

    let mut filled = BloomFilter::with_byte_budget(4 * 1024, 0.01);
    for id in &ids {
        filled.insert(id);
    }
    group.bench_function("probe_4k_trace_ids", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for id in &ids {
                if filled.contains(id) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_merge_and_reset(c: &mut Criterion) {
    let mut a = BloomFilter::with_byte_budget(4 * 1024, 0.01);
    let mut b_filter = BloomFilter::with_byte_budget(4 * 1024, 0.01);
    for id in 0..2_000u128 {
        a.insert(&id);
        b_filter.insert(&(id + 10_000));
    }
    c.bench_function("bloom_merge", |bencher| {
        bencher.iter_batched(
            || a.clone(),
            |mut merged| {
                merged.merge(&b_filter);
                merged
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert, bench_merge_and_reset
);
criterion_main!(benches);
