//! Compare Mint against the baseline tracing frameworks on the same
//! TrainTicket workload: network/storage overhead and query answerability.
//!
//! This is a miniature version of the paper's Fig. 11 + Fig. 12, runnable in
//! a few seconds:
//!
//! ```bash
//! cargo run --release --example framework_comparison
//! ```

use mint::baselines::{
    Hindsight, MintFramework, OtFull, OtHead, OtTail, QueryOutcome, Sieve, TracingFramework,
};
use mint::core::{MintConfig, SamplingMode};
use mint::workload::{train_ticket, GeneratorConfig, TraceGenerator};

fn main() {
    let generator_config = GeneratorConfig::default()
        .with_seed(11)
        .with_abnormal_rate(0.05);
    let mut generator = TraceGenerator::new(train_ticket(), generator_config);
    let traces = generator.generate(2_000);
    println!(
        "workload: {} TrainTicket traces, {} spans, {:.1} MB raw\n",
        traces.len(),
        traces.span_count(),
        traces.total_wire_size() as f64 / 1e6
    );

    let mint_config = MintConfig::default().with_sampling_mode(SamplingMode::AbnormalTag);
    let mut frameworks: Vec<Box<dyn TracingFramework>> = vec![
        Box::new(OtFull::new()),
        Box::new(OtHead::new(0.05)),
        Box::new(OtTail::new()),
        Box::new(Sieve::new(0.05)),
        Box::new(Hindsight::new()),
        Box::new(MintFramework::new(mint_config)),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "framework", "network %", "storage %", "exact", "partial", "miss"
    );
    for framework in frameworks.iter_mut() {
        let report = framework.process(&traces);
        let mut exact = 0;
        let mut partial = 0;
        let mut miss = 0;
        for trace in &traces {
            match framework.query(trace.trace_id()) {
                QueryOutcome::ExactHit => exact += 1,
                QueryOutcome::PartialHit => partial += 1,
                QueryOutcome::Miss => miss += 1,
            }
        }
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>10} {:>10} {:>10}",
            framework.name(),
            report.network_ratio() * 100.0,
            report.storage_ratio() * 100.0,
            exact,
            partial,
            miss
        );
    }
    println!(
        "\nMint answers every query (exact + partial = total) while keeping both overhead \
         columns at a few percent."
    );
}
