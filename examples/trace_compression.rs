//! Lossless trace compression with Mint's commonality + variability parsing,
//! compared with log-style compressors on the same textual rendering — a
//! single-dataset version of the paper's Table 4.
//!
//! ```bash
//! cargo run --release --example trace_compression
//! ```

use mint::compressors::{Clp, Compressor, LogReducer, LogZip};
use mint::core::{mint_compressed_size, MintConfig};
use mint::trace_model::render_trace_text;
use mint::workload::alibaba_dataset;

fn main() {
    let dataset = alibaba_dataset("D").expect("dataset D exists");
    let mut generator = dataset.generator(3);
    let traces = generator.generate(dataset.scaled_trace_count(0.002));

    let lines: Vec<String> = traces
        .iter()
        .flat_map(|t| {
            render_trace_text(t)
                .lines()
                .map(str::to_owned)
                .collect::<Vec<_>>()
        })
        .collect();
    let raw_text: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
    println!(
        "dataset {}: {} traces, {} spans, {:.1} MB of span text",
        dataset.name,
        traces.len(),
        lines.len(),
        raw_text as f64 / 1e6
    );

    for compressor in [
        &LogZip::new() as &dyn Compressor,
        &LogReducer::new(),
        &Clp::new(),
    ] {
        let stats = compressor.compress(&lines);
        println!(
            "{:<12} {:>8.2}x ({} templates)",
            compressor.name(),
            stats.ratio(),
            stats.templates
        );
    }

    let config = MintConfig::default();
    let breakdown = mint_compressed_size(&traces, &config, true, true);
    println!(
        "{:<12} {:>8.2}x (span patterns {} B, topo patterns {} B, params {} B)",
        "Mint",
        raw_text as f64 / breakdown.compressed_bytes().max(1) as f64,
        breakdown.span_pattern_bytes,
        breakdown.topo_pattern_bytes,
        breakdown.params_bytes
    );
    println!(
        "\nMint stores every trace losslessly (queryable without decompression) in a fraction \
         of the space the line-oriented compressors need."
    );
}
