//! Fault diagnosis with trace data retained by different tracing frameworks.
//!
//! Injects a CPU-exhaustion fault into the OnlineBoutique payment service,
//! lets OT-Head and Mint observe the traffic, and runs the three RCA methods
//! over whatever each framework retained — a single cell of the paper's
//! Table 3, end to end.
//!
//! ```bash
//! cargo run --release --example fault_diagnosis
//! ```

use mint::baselines::{MintFramework, OtHead, TracingFramework};
use mint::core::MintConfig;
use mint::rca::{label_anomalous, MicroRank, RcaMethod, TraceAnomaly, TraceRca};
use mint::workload::{online_boutique, FaultInjector, FaultType, GeneratorConfig, TraceGenerator};

fn main() {
    const TARGET: &str = "paymentservice";

    // Generate traffic and inject the fault.
    let generator_config = GeneratorConfig::default()
        .with_seed(23)
        .with_abnormal_rate(0.0);
    let mut generator = TraceGenerator::new(online_boutique(), generator_config);
    let mut traces = generator.generate(800);
    let injector = FaultInjector::new(5);
    let record = injector.inject(&mut traces, FaultType::CpuExhaustion, TARGET);
    println!(
        "injected {} into {} ({} traces affected)\n",
        record.fault_type.label(),
        record.target_service,
        record.affected_traces
    );

    let methods: Vec<Box<dyn RcaMethod>> = vec![
        Box::new(MicroRank),
        Box::new(TraceAnomaly),
        Box::new(TraceRca::default()),
    ];

    let mut frameworks: Vec<Box<dyn TracingFramework>> = vec![
        Box::new(OtHead::new(0.05)),
        Box::new(MintFramework::new(MintConfig::default())),
    ];

    for framework in frameworks.iter_mut() {
        framework.process(&traces);
        let views = framework.analysis_views();
        let labelled = label_anomalous(&views);
        println!(
            "== {} retained {} trace views ({} anomalous) ==",
            framework.name(),
            labelled.len(),
            labelled.iter().filter(|l| l.anomalous).count()
        );
        for method in &methods {
            let ranking = method.rank(&labelled);
            let top: Vec<String> = ranking
                .iter()
                .take(3)
                .map(|(service, score)| format!("{service} ({score:.2})"))
                .collect();
            let hit = ranking.first().map(|(s, _)| s == TARGET).unwrap_or(false);
            println!(
                "  {:<13} top-3: {:<70} A@1 {}",
                method.name(),
                top.join(", "),
                if hit { "HIT" } else { "miss" }
            );
        }
        println!();
    }
    println!(
        "Mint keeps approximate information about every request plus exact information about \
         the anomalous ones, which is what the spectrum/deviation methods need to isolate {TARGET}."
    );
}
