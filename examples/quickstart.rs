//! Quickstart: run a small microservice workload through a full Mint
//! deployment and query a trace back, both exactly and approximately.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mint::core::{MintConfig, MintDeployment, QueryResult};
use mint::workload::{online_boutique, GeneratorConfig, TraceGenerator};

fn main() {
    // 1. Generate traffic for the OnlineBoutique application: 10 services,
    //    8 request APIs, 5% of requests tagged abnormal.
    let generator_config = GeneratorConfig::default()
        .with_seed(7)
        .with_abnormal_rate(0.05);
    let mut generator = TraceGenerator::new(online_boutique(), generator_config);
    let traces = generator.generate(1_000);
    println!(
        "generated {} traces / {} spans ({} raw bytes)",
        traces.len(),
        traces.span_count(),
        traces.total_wire_size()
    );

    // 2. Run them through a Mint deployment: one agent per service, a
    //    collector and a backend.
    let mut mint = MintDeployment::new(MintConfig::default());
    let report = mint.process(&traces);
    println!(
        "mint processed {} traces: {} span patterns, {} topology patterns",
        report.traces, report.span_patterns, report.topo_patterns
    );
    println!(
        "storage: {} bytes ({:.1}% of raw); network: {} bytes ({:.1}% of raw); {} traces sampled",
        report.storage.total_bytes(),
        report.storage_ratio() * 100.0,
        report.network.total_bytes(),
        report.network_ratio() * 100.0,
        report.sampled_traces
    );

    // 3. Query traces back.  Every trace is answerable: sampled traces come
    //    back exactly, the rest as approximate traces.
    let mut exact = 0;
    let mut approximate = 0;
    for trace in &traces {
        match mint.backend().query(trace.trace_id()) {
            QueryResult::Exact(_) => exact += 1,
            QueryResult::Approximate(_) => approximate += 1,
            QueryResult::Miss => unreachable!("mint never loses a trace"),
        }
    }
    println!("queries answered: {exact} exact, {approximate} approximate, 0 misses");

    // 4. Show one approximate trace the way the paper's Fig. 10 does.
    let unsampled = traces
        .iter()
        .find(|t| {
            matches!(
                mint.backend().query(t.trace_id()),
                QueryResult::Approximate(_)
            )
        })
        .expect("some trace is unsampled");
    if let QueryResult::Approximate(approx) = mint.backend().query(unsampled.trace_id()) {
        println!("\napproximate trace {}:", approx.trace_id);
        for span in approx.spans.iter().take(6) {
            println!(
                "  [{}] {} / {} duration {} attrs {:?}",
                span.kind,
                span.service,
                span.name,
                span.duration_range,
                span.attributes.iter().take(2).collect::<Vec<_>>()
            );
        }
    }
}
