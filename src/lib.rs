//! Umbrella crate for the Mint reproduction.
//!
//! This crate re-exports every workspace member so that examples,
//! integration tests and downstream users have a single dependency:
//!
//! * [`trace_model`] — the span/trace data model and wire-size ruler;
//! * [`bloom`] — the Bloom filter used for metadata mounting;
//! * [`workload`] — microservice workload simulators and fault injection;
//! * [`core`] — Mint itself: parsers, pattern libraries, samplers, agent,
//!   collector and backend;
//! * [`baselines`] — comparison tracing frameworks behind one trait;
//! * [`compressors`] — log-style compression comparators;
//! * [`rca`] — downstream root-cause-analysis consumers.
//!
//! # Quick start
//!
//! ```
//! use mint::core::{MintConfig, MintDeployment};
//! use mint::workload::{online_boutique, GeneratorConfig, TraceGenerator};
//!
//! let mut generator = TraceGenerator::new(online_boutique(), GeneratorConfig::default());
//! let traces = generator.generate(100);
//! let mut deployment = MintDeployment::new(MintConfig::default());
//! let report = deployment.process(&traces);
//! assert_eq!(report.traces, 100);
//! assert!(!deployment.backend().query(traces.traces()[0].trace_id()).is_miss());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use compressors;
pub use mint_bloom as bloom;
pub use mint_core as core;
pub use rca;
pub use trace_model;
pub use workload;
