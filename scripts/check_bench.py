#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json trajectory documents.

Usage: check_bench.py <ingest|query|chaos> <path>

One validator replaces the three inline-Python checks CI used to carry, and
runs against both the freshly generated smoke documents and the committed
root trajectories (so a stale checked-in BENCH file fails CI).

Every document is parsed with `parse_constant` set to fail: the JSON spec
has no NaN/Infinity, and a bench writer that truncates or passes non-finite
floats through produced exactly that bug once (see lint rule L007).
"""

import json
import sys


def fail(message):
    sys.exit(f"check_bench: {message}")


def reject_constant(token):
    fail(f"non-finite JSON constant {token!r} (bench writers must emit null)")


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle, parse_constant=reject_constant)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")


def expect_schema(doc, path, want):
    got = doc.get("schema")
    if got != want:
        fail(f"{path}: schema is {got!r}, expected {want!r}")


def check_ingest(doc, path):
    expect_schema(doc, path, "mint-ingest-v1")
    phases = doc["profile"]["phases"]
    if not phases:
        fail(f"{path}: empty phase map")
    for name, phase in phases.items():
        for key in ("before_ns_per_span", "after_ns_per_span", "reduction_pct"):
            if key not in phase:
                fail(f"{path}: phase {name!r} is missing {key!r}")
    if "serial_ns_per_span" not in doc["profile"]["pipeline"]:
        fail(f"{path}: pipeline is missing 'serial_ns_per_span'")
    print(f"{path} OK: {len(phases)} phases")


def check_query(doc, path):
    expect_schema(doc, path, "mint-query-v1")
    threads = doc["query_loadtest"]["threads"]
    if not threads:
        fail(f"{path}: empty thread map")
    for count, entry in threads.items():
        if not entry.get("query_p99_us", 0) > 0:
            fail(f"{path}: threads={count} has non-positive query_p99_us")
        if not entry.get("ingest_traces_per_s", 0) > 0:
            fail(f"{path}: threads={count} has non-positive ingest_traces_per_s")
    if not doc["query_loadtest"]["baseline"].get("ingest_traces_per_s", 0) > 0:
        fail(f"{path}: baseline has non-positive ingest_traces_per_s")
    print(f"{path} OK: {len(threads)} thread counts")


def check_chaos(doc, path):
    expect_schema(doc, path, "mint-chaos-v1")
    scenarios = doc["scenarios"]
    if not isinstance(scenarios, list) or not scenarios:
        fail(f"{path}: empty scenario list")
    for index, scenario in enumerate(scenarios):
        for key in ("mint_capture_rate", "rca"):
            if key not in scenario:
                fail(f"{path}: scenario #{index} is missing {key!r}")
    print(f"{path} OK: {len(scenarios)} scenarios")


CHECKS = {"ingest": check_ingest, "query": check_query, "chaos": check_chaos}


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in CHECKS:
        fail(f"usage: check_bench.py <{'|'.join(CHECKS)}> <path>")
    kind, path = sys.argv[1], sys.argv[2]
    doc = load(path)
    try:
        CHECKS[kind](doc, path)
    except (KeyError, TypeError, AttributeError) as err:
        fail(f"{path}: malformed {kind} document ({err!r})")


if __name__ == "__main__":
    main()
