#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json trajectory documents.

Usage: check_bench.py <ingest|query|chaos> <path> [--committed <path>]

One validator replaces the three inline-Python checks CI used to carry, and
runs against both the freshly generated smoke documents and the committed
root trajectories (so a stale checked-in BENCH file fails CI).

With `--committed`, an ingest document is additionally held to a soft
performance gate against the committed trajectory: the regenerated smoke
profile's interned-LCS phase may not regress more than 25% in ns/span
relative to the committed after-side.  Smoke timings are noisy, so the gate
is deliberately loose — it exists to catch an accidental return to the
string DP (a 3-6x swing), not 5% jitter.

Every document is parsed with `parse_constant` set to fail: the JSON spec
has no NaN/Infinity, and a bench writer that truncates or passes non-finite
floats through produced exactly that bug once (see lint rule L007).
"""

import json
import sys

# The ingest profile's phase map is an interface: downstream tooling plots
# these by name, so a renamed or dropped phase must fail loudly.
INGEST_REQUIRED_PHASES = (
    "tokenize",
    "candidate_scan",
    "lcs_similarity",
    "lcs_interned",
    "prefilter",
    "extract",
    "match_path",
    "dispatch",
)

INGEST_PREFILTER_KEYS = (
    "candidates_considered",
    "candidates_skipped",
    "lcs_calls",
    "lcs_calls_avoided",
    "skip_pct",
)

# Soft gate headroom: fresh lcs_similarity.after_ns_per_span may be at most
# this multiple of the committed value.
LCS_REGRESSION_LIMIT = 1.25


def fail(message):
    sys.exit(f"check_bench: {message}")


def reject_constant(token):
    fail(f"non-finite JSON constant {token!r} (bench writers must emit null)")


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle, parse_constant=reject_constant)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")


def expect_schema(doc, path, want):
    got = doc.get("schema")
    if got != want:
        fail(f"{path}: schema is {got!r}, expected {want!r}")


def check_ingest(doc, path):
    expect_schema(doc, path, "mint-ingest-v1")
    phases = doc["profile"]["phases"]
    if not phases:
        fail(f"{path}: empty phase map")
    for name in INGEST_REQUIRED_PHASES:
        if name not in phases:
            fail(f"{path}: phase map is missing {name!r}")
    for name, phase in phases.items():
        for key in ("before_ns_per_span", "after_ns_per_span", "reduction_pct"):
            if key not in phase:
                fail(f"{path}: phase {name!r} is missing {key!r}")
    effect = doc["profile"].get("prefilter_effect")
    if effect is None:
        fail(f"{path}: profile is missing 'prefilter_effect'")
    for key in INGEST_PREFILTER_KEYS:
        if key not in effect:
            fail(f"{path}: prefilter_effect is missing {key!r}")
    if effect["candidates_skipped"] + effect["lcs_calls"] != effect["candidates_considered"]:
        fail(
            f"{path}: prefilter_effect does not balance "
            f"(skipped {effect['candidates_skipped']} + lcs {effect['lcs_calls']} "
            f"!= considered {effect['candidates_considered']})"
        )
    if "serial_ns_per_span" not in doc["profile"]["pipeline"]:
        fail(f"{path}: pipeline is missing 'serial_ns_per_span'")
    print(f"{path} OK: {len(phases)} phases")


def gate_ingest_perf(doc, path, committed_path):
    """Soft perf gate: fresh interned-LCS ns/span vs the committed trajectory."""
    committed = load(committed_path)
    fresh = doc["profile"]["phases"]["lcs_similarity"]["after_ns_per_span"]
    baseline = committed["profile"]["phases"]["lcs_similarity"]["after_ns_per_span"]
    if baseline <= 0:
        fail(f"{committed_path}: non-positive committed lcs_similarity after_ns_per_span")
    ratio = fresh / baseline
    if ratio > LCS_REGRESSION_LIMIT:
        fail(
            f"{path}: lcs_similarity regressed to {fresh:.0f} ns/span, "
            f"{ratio:.2f}x the committed {baseline:.0f} ns/span "
            f"(limit {LCS_REGRESSION_LIMIT}x) — the interned kernel got slower"
        )
    print(
        f"{path} perf gate OK: lcs_similarity {fresh:.0f} ns/span is "
        f"{ratio:.2f}x the committed {baseline:.0f} ns/span"
    )


def check_query(doc, path):
    expect_schema(doc, path, "mint-query-v1")
    threads = doc["query_loadtest"]["threads"]
    if not threads:
        fail(f"{path}: empty thread map")
    for count, entry in threads.items():
        if not entry.get("query_p99_us", 0) > 0:
            fail(f"{path}: threads={count} has non-positive query_p99_us")
        if not entry.get("ingest_traces_per_s", 0) > 0:
            fail(f"{path}: threads={count} has non-positive ingest_traces_per_s")
    if not doc["query_loadtest"]["baseline"].get("ingest_traces_per_s", 0) > 0:
        fail(f"{path}: baseline has non-positive ingest_traces_per_s")
    print(f"{path} OK: {len(threads)} thread counts")


def check_chaos(doc, path):
    expect_schema(doc, path, "mint-chaos-v1")
    scenarios = doc["scenarios"]
    if not isinstance(scenarios, list) or not scenarios:
        fail(f"{path}: empty scenario list")
    for index, scenario in enumerate(scenarios):
        for key in ("mint_capture_rate", "rca"):
            if key not in scenario:
                fail(f"{path}: scenario #{index} is missing {key!r}")
    print(f"{path} OK: {len(scenarios)} scenarios")


CHECKS = {"ingest": check_ingest, "query": check_query, "chaos": check_chaos}


def main():
    args = sys.argv[1:]
    committed = None
    if "--committed" in args:
        flag = args.index("--committed")
        try:
            committed = args[flag + 1]
        except IndexError:
            fail("--committed requires a path")
        del args[flag : flag + 2]
    if len(args) != 2 or args[0] not in CHECKS:
        fail(f"usage: check_bench.py <{'|'.join(CHECKS)}> <path> [--committed <path>]")
    kind, path = args
    if committed is not None and kind != "ingest":
        fail("--committed only applies to ingest documents")
    doc = load(path)
    try:
        CHECKS[kind](doc, path)
        if committed is not None:
            gate_ingest_perf(doc, path, committed)
    except (KeyError, TypeError, AttributeError) as err:
        fail(f"{path}: malformed {kind} document ({err!r})")


if __name__ == "__main__":
    main()
